// NodeKernel: one Beowulf node — CPU scheduler, syscall layer, VM, file
// system, buffer cache, instrumented driver, disk, and the system daemons
// whose background I/O the paper's baseline experiment measures.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "block/buffer_cache.hpp"
#include "driver/ide_driver.hpp"
#include "fs/ext2lite.hpp"
#include "kernel/config.hpp"
#include "kernel/fabric_iface.hpp"
#include "kernel/process.hpp"
#include "mm/vm.hpp"
#include "sim/engine.hpp"
#include "trace/trace_set.hpp"
#include "util/rng.hpp"
#include "workload/op.hpp"

namespace ess::kernel {

class NodeKernel {
 public:
  explicit NodeKernel(KernelConfig cfg, int node_id = 0);

  /// Multi-node form: the node shares `engine` with its peers (one virtual
  /// clock for the whole machine). Construction does not settle setup I/O
  /// (the machine owner settles once after all nodes exist).
  NodeKernel(sim::Engine& engine, KernelConfig cfg, int node_id);

  ~NodeKernel();

  NodeKernel(const NodeKernel&) = delete;
  NodeKernel& operator=(const NodeKernel&) = delete;

  // ---- setup phase (normally before tracing is switched on) ----

  /// Stage an input file of `size` bytes, contiguous at `goal_block`
  /// (0 = allocator default region for application data).
  fs::Ino stage_input_file(const std::string& path, std::uint64_t size,
                           std::uint64_t goal_block = 0);

  /// Pull the first `fraction` of a staged file through the buffer cache
  /// (reads it and waits for the I/O in virtual time). Models binaries
  /// partially hot in the cache from recent use; the cold tail still
  /// demand-loads from disk during the run.
  void warm_file(const std::string& path, double fraction = 1.0);

  /// The paper's ioctl: toggle driver instrumentation without a reboot.
  void ioctl_trace(driver::TraceLevel level);

  // ---- streaming telemetry taps (neither is owned; both may be null) ----

  /// Publishes every record at driver emission time — live consumers see
  /// the run in flight (progress snapshots, streaming characterization).
  void set_live_sink(telemetry::Sink* sink);

  /// Publishes records as the trace-drain daemon moves them out of the
  /// procfs ring — the modelled trace file. Attach a telemetry::EsstFileSink
  /// and the drain writes an indexed ESST trace to the host disk while the
  /// simulated drain I/O still hits the simulated disk, as in the paper.
  void set_drain_sink(telemetry::Sink* sink) { drain_sink_ = sink; }

  // ---- running ----

  /// Start a process executing `trace`. Its program image is staged at
  /// /bin/<app_name> on first use (subsequent spawns share it, as text
  /// pages of one binary would be).
  mm::Pid spawn(workload::OpTrace trace);

  /// Create the process without scheduling it (used when the caller still
  /// has to bind a rank before the first op may run); start() releases it.
  mm::Pid spawn_deferred(workload::OpTrace trace);
  void start(mm::Pid pid) { make_ready(pid); }

  /// Attach a message fabric and give a process a PVM rank. The caller
  /// (pvm::Machine) also registers the (rank -> node, pid) binding with
  /// the fabric itself.
  void set_fabric(MessageFabric* fabric) { fabric_ = fabric; }
  void set_rank(mm::Pid pid, int rank) { procs_.at(pid)->rank = rank; }

  /// Advance virtual time by `d`, executing everything due.
  void run_for(SimTime d);

  /// Run until every spawned process finished or `max_time` is reached.
  /// Returns true if all processes completed.
  bool run_until_done(SimTime max_time);

  bool all_done() const;
  SimTime now() const { return engine_.now(); }

  // ---- results ----

  /// Drain the trace ring and return everything captured so far.
  trace::TraceSet collect_trace(const std::string& experiment_name);

  const Process& process(mm::Pid pid) const { return *procs_.at(pid); }
  std::vector<mm::Pid> pids() const;

  // ---- subsystem access (tests, analysis, cluster layer) ----

  sim::Engine& engine() { return engine_; }

  /// Resume a process blocked by an external facility (the PVM fabric).
  /// `charge` is kernel CPU owed on wakeup (unpack cost).
  void external_resume(mm::Pid pid, SimTime charge) {
    resume_process(pid, charge);
  }
  /// Block the currently-running process on an external facility. Must be
  /// called from an op executor context (see exec_recv).
  void external_block(Process& p) { block_process(p); }
  fs::Ext2Lite& fsys() { return *fs_; }
  block::BufferCache& cache() { return *cache_; }
  mm::Vm& vm() { return *vm_; }
  disk::Drive& drive() { return *drive_; }
  driver::IdeDriver& ide() { return *driver_; }
  /// The procfs trace ring (drop accounting lives here).
  trace::RingBuffer& trace_ring() { return ring_; }
  /// Null unless cfg.fault.active() at construction.
  fault::FaultInjector* fault_injector() { return faults_.get(); }
  const KernelConfig& config() const { return cfg_; }
  int node_id() const { return node_id_; }
  Rng& rng() { return rng_; }

  /// Convert a floating-point operation count to DX4 CPU time.
  SimTime flops_to_time(double flops) const {
    return static_cast<SimTime>(flops / cfg_.cpu_mflops);  // us = flops/MFLOPS
  }

 private:
  // Scheduling core (node_kernel.cpp).
  void make_ready(mm::Pid pid);
  void dispatch();
  void continue_process(mm::Pid pid, SimTime budget);
  void block_process(Process& p);
  void resume_process(mm::Pid pid, SimTime extra_charge);
  void finish_process(Process& p);
  void release_cpu();

  // Op executors; return true if the op (or a slice of it) was scheduled /
  // blocked and continue_process must return.
  /// Run a CPU slice from either the pending-charge pool (charge_pool) or
  /// the current ComputeOp's remaining time.
  void run_cpu_slice(mm::Pid pid, SimTime budget, bool charge_pool);
  bool exec_touch(Process& p, workload::TouchOp& op);
  bool exec_read(Process& p, const workload::ReadOp& op);
  void exec_write(Process& p, const workload::WriteOp& op);
  void exec_scratch_create(Process& p, const workload::ScratchCreateOp& op);
  void exec_unlink(Process& p, const workload::UnlinkOp& op);
  void exec_send(Process& p, const workload::SendOp& op);
  bool exec_recv(Process& p, const workload::RecvOp& op);     // true = blocked
  bool exec_barrier(Process& p, const workload::BarrierOp&);  // true = blocked

  SimTime copy_cost(std::uint64_t bytes) const;

  // Daemons (daemons.cpp).
  void start_daemons();
  void daemon_update();
  void daemon_bdflush();
  void daemon_syslogd();
  void daemon_klogd();
  void daemon_utmpd();
  void daemon_pacct();
  void daemon_trace_drain();
  /// The drain body without the injected-stall gate (final collection must
  /// terminate even when the plan stalls the daemon forever).
  void force_trace_drain(std::size_t batch_limit = 0);

  void init();  // shared constructor body

  KernelConfig cfg_;
  int node_id_;
  Rng rng_;

  std::unique_ptr<sim::Engine> owned_engine_;  // empty in shared mode
  sim::Engine& engine_;
  bool shared_engine_ = false;
  std::unique_ptr<fault::FaultInjector> faults_;  // before drive_: outlives it
  std::unique_ptr<disk::Drive> drive_;
  trace::RingBuffer ring_;
  std::unique_ptr<driver::IdeDriver> driver_;
  std::unique_ptr<block::BufferCache> cache_;
  std::unique_ptr<fs::Ext2Lite> fs_;
  std::unique_ptr<mm::FramePool> frames_;
  std::unique_ptr<mm::SwapManager> swap_;
  std::unique_ptr<mm::Vm> vm_;

  // System files.
  fs::Ino syslog_ino_ = 0;
  fs::Ino klog_ino_ = 0;
  fs::Ino utmp_ino_ = 0;
  fs::Ino pacct_ino_ = 0;
  fs::Ino trace_ino_ = 0;

  // Process management.
  std::unordered_map<mm::Pid, std::unique_ptr<Process>> procs_;
  std::deque<mm::Pid> run_queue_;
  bool cpu_busy_ = false;
  mm::Pid next_pid_ = 1;

  // Captured trace (contents of the trace file).
  std::vector<trace::Record> capture_;

  telemetry::Sink* drain_sink_ = nullptr;

  MessageFabric* fabric_ = nullptr;
};

}  // namespace ess::kernel
