// The kernel's view of a message-passing fabric. The concrete
// implementation (pvm::Fabric) lives above the kernel; processes reach it
// through SendOp/RecvOp/BarrierOp.
#pragma once

#include <cstdint>

namespace ess::kernel {

class MessageFabric {
 public:
  virtual ~MessageFabric() = default;

  virtual void send(int src_rank, int dst_rank, std::uint64_t bytes,
                    int tag) = 0;
  /// Consume a matching message now; false = caller must block (and must
  /// then call wait_recv).
  virtual bool try_recv(int dst_rank, int src_rank, int tag) = 0;
  virtual void wait_recv(int dst_rank, int src_rank, int tag) = 0;
  /// True = barrier completed inline; false = caller blocks until release.
  /// `participants` 0 means every registered rank (the world).
  virtual bool enter_barrier(int rank, int group, int participants) = 0;
};

}  // namespace ess::kernel
