// The procfs-style kernel trace buffer.
//
// The paper buffered driver trace entries "by the kernel message handling
// facility through the proc filesystem" and drained them to a regular file.
// We model that: a bounded ring buffer in "kernel memory" that the trace
// daemon drains in batches. Overflow drops the oldest entries and counts
// them, so an undersized buffer is observable rather than silently wrong.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "trace/record.hpp"

namespace ess::trace {

class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {}

  void push(const Record& r);

  /// Remove and return up to `max` oldest records.
  std::vector<Record> drain(std::size_t max);

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t pushed() const { return pushed_; }

 private:
  std::size_t capacity_;
  std::deque<Record> buf_;
  std::uint64_t dropped_ = 0;
  std::uint64_t pushed_ = 0;
};

}  // namespace ess::trace
