#include "trace/trace_set.hpp"

#include <algorithm>

namespace ess::trace {

SimTime TraceSet::duration() const {
  if (duration_ > 0) return duration_;
  if (records_.empty()) return 0;
  return records_.back().timestamp;
}

TraceSet TraceSet::slice(SimTime begin, SimTime end) const {
  TraceSet out(experiment_, node_id_);
  for (const auto& r : records_) {
    if (r.timestamp >= begin && r.timestamp < end) out.add(r);
  }
  out.set_duration(end - begin);
  return out;
}

TraceSet TraceSet::filter_dir(bool writes) const {
  TraceSet out(experiment_, node_id_);
  for (const auto& r : records_) {
    if ((r.is_write != 0) == writes) out.add(r);
  }
  out.set_duration(duration_);
  return out;
}

void TraceSet::merge(const TraceSet& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
  sort_by_time();
  duration_ = std::max(duration(), other.duration());
}

void TraceSet::rebase(SimTime t0) {
  std::vector<Record> kept;
  kept.reserve(records_.size());
  for (auto r : records_) {
    if (r.timestamp < t0) continue;
    r.timestamp -= t0;
    kept.push_back(r);
  }
  records_ = std::move(kept);
  if (duration_ >= t0) duration_ -= t0;
}

void TraceSet::sort_by_time() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const Record& a, const Record& b) {
                     return a.timestamp < b.timestamp;
                   });
}

}  // namespace ess::trace
