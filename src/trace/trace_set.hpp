// A complete captured trace for one experiment on one node.
#pragma once

#include <string>
#include <vector>

#include "trace/record.hpp"

namespace ess::trace {

class TraceSet {
 public:
  TraceSet() = default;
  TraceSet(std::string experiment, int node_id)
      : experiment_(std::move(experiment)), node_id_(node_id) {}

  void add(const Record& r) { records_.push_back(r); }
  void add_all(const std::vector<Record>& rs) {
    records_.insert(records_.end(), rs.begin(), rs.end());
  }

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const std::string& experiment() const { return experiment_; }
  int node_id() const { return node_id_; }

  /// Wall-clock span of the experiment; set by the harness (the capture can
  /// end after the last record if the run idles at the tail).
  void set_duration(SimTime d) { duration_ = d; }
  SimTime duration() const;

  /// Records with begin <= timestamp < end.
  TraceSet slice(SimTime begin, SimTime end) const;

  /// Keep only reads or only writes.
  TraceSet filter_dir(bool writes) const;

  /// Merge another trace (e.g., from a second node); keeps records sorted
  /// by timestamp.
  void merge(const TraceSet& other);

  /// Sort records by timestamp (stable).
  void sort_by_time();

  /// Shift time zero to `t0`: drops records before t0 and subtracts t0
  /// from the rest (used to re-zero a trace at the tracing-on instant).
  void rebase(SimTime t0);

 private:
  std::string experiment_;
  int node_id_ = 0;
  SimTime duration_ = 0;
  std::vector<Record> records_;
};

}  // namespace ess::trace
