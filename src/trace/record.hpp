// The trace record captured by the instrumented device driver.
//
// Matches the paper exactly: "All read or write requests sent to the disk
// drive generated a trace entry consisting of a timestamp, the disk sector
// number requested, a flag indicating either a read or write request, and a
// count of the remaining I/O requests to be processed."
// We additionally record the request size (in sectors) since every figure in
// the evaluation plots request sizes; on the real system the size is
// recoverable from the driver request structure at the same probe point.
#pragma once

#include <cstdint>

#include "util/sim_time.hpp"

namespace ess::trace {

struct Record {
  SimTime timestamp = 0;        // microseconds since experiment start
  std::uint32_t sector = 0;     // first LBA of the request
  std::uint32_t size_bytes = 0; // request size (sector_count * 512)
  std::uint8_t is_write = 0;    // 0 = read, 1 = write
  std::uint16_t outstanding = 0;// remaining queued requests at capture time
  /// Originating node for multi-node (merged) record streams; 0 on a
  /// single-node capture, where the file-level node id (TraceSet /
  /// EsstMeta) identifies the disk. Carried per record only by the
  /// multi-node ESST format; CSV and the legacy flat binary drop it.
  std::int32_t node = 0;

  friend bool operator==(const Record&, const Record&) = default;
};

}  // namespace ess::trace
