#include "trace/ring_buffer.hpp"

namespace ess::trace {

void RingBuffer::push(const Record& r) {
  ++pushed_;
  if (buf_.size() == capacity_) {
    buf_.pop_front();
    ++dropped_;
  }
  buf_.push_back(r);
}

std::vector<Record> RingBuffer::drain(std::size_t max) {
  const std::size_t n = std::min(max, buf_.size());
  std::vector<Record> out(buf_.begin(), buf_.begin() + static_cast<long>(n));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(n));
  return out;
}

}  // namespace ess::trace
