#include "trace/ring_buffer.hpp"

#include <algorithm>

namespace ess::trace {

void RingBuffer::push(const Record& r) {
  ++pushed_;
  // A zero-capacity ring (instrumentation armed but no buffer configured)
  // drops everything; it must not touch the empty deque.
  if (capacity_ == 0) {
    ++dropped_;
    return;
  }
  while (buf_.size() >= capacity_) {
    buf_.pop_front();  // drop-oldest: the newest record always lands
    ++dropped_;
  }
  buf_.push_back(r);
}

std::vector<Record> RingBuffer::drain(std::size_t max) {
  const std::size_t n = std::min(max, buf_.size());
  std::vector<Record> out(buf_.begin(), buf_.begin() + static_cast<long>(n));
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(n));
  return out;
}

}  // namespace ess::trace
