// Binary and CSV serialization of trace sets (the "trace files" of the
// paper's methodology).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace_set.hpp"

namespace ess::trace {

/// Binary format: magic "ESSTRC01", node id, duration, record count, then
/// packed records. Little-endian (we only target such platforms).
void write_binary(const TraceSet& ts, std::ostream& os);
TraceSet read_binary(std::istream& is);

void write_binary_file(const TraceSet& ts, const std::string& path);
TraceSet read_binary_file(const std::string& path);

/// CSV with header: timestamp_us,sector,size_bytes,is_write,outstanding
void write_csv(const TraceSet& ts, std::ostream& os);
void write_csv_file(const TraceSet& ts, const std::string& path);

/// Streaming CSV: header and record spans separately, so a chunked reader
/// can emit a capture without materializing the whole TraceSet (esstrace
/// cat over multi-GB ESST files decodes one chunk at a time).
void write_csv_header(std::ostream& os);
void write_csv_records(const Record* r, std::size_t n, std::ostream& os);

/// CSV ingestion (the reverse direction: traces exported by this tool, or
/// produced by hand / another harness). Tolerant by design — an empty file
/// is an empty trace, and blank lines, '#' comments, a header row, and
/// malformed rows are skipped (and counted), never fatal. Rows with benign
/// formatting damage (a trailing delimiter, whitespace padding inside
/// fields) are repaired and kept; the stats distinguish the two so a caller
/// can tell "this file was scruffy but complete" from "rows were lost".
struct CsvReadStats {
  std::uint64_t rows = 0;      // records kept (includes repaired ones)
  std::uint64_t skipped = 0;   // malformed rows dropped (data lost)
  std::uint64_t repaired = 0;  // rows kept only after cleanup (no data lost)
  bool had_header = false;
};
TraceSet read_csv(std::istream& is, CsvReadStats* stats = nullptr);
TraceSet read_csv_file(const std::string& path, CsvReadStats* stats = nullptr);

}  // namespace ess::trace
