// Binary and CSV serialization of trace sets (the "trace files" of the
// paper's methodology).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace_set.hpp"

namespace ess::trace {

/// Binary format: magic "ESSTRC01", node id, duration, record count, then
/// packed records. Little-endian (we only target such platforms).
void write_binary(const TraceSet& ts, std::ostream& os);
TraceSet read_binary(std::istream& is);

void write_binary_file(const TraceSet& ts, const std::string& path);
TraceSet read_binary_file(const std::string& path);

/// CSV with header: timestamp_us,sector,size_bytes,is_write,outstanding
void write_csv(const TraceSet& ts, std::ostream& os);
void write_csv_file(const TraceSet& ts, const std::string& path);

}  // namespace ess::trace
