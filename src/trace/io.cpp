#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace ess::trace {
namespace {

constexpr char kMagic[8] = {'E', 'S', 'S', 'T', 'R', 'C', '0', '1'};

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("trace: truncated stream");
  return v;
}

}  // namespace

void write_binary(const TraceSet& ts, std::ostream& os) {
  os.write(kMagic, sizeof kMagic);
  const auto name = ts.experiment();
  put(os, static_cast<std::uint32_t>(name.size()));
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  put(os, static_cast<std::int32_t>(ts.node_id()));
  put(os, ts.duration());
  put(os, static_cast<std::uint64_t>(ts.size()));
  for (const auto& r : ts.records()) {
    put(os, r.timestamp);
    put(os, r.sector);
    put(os, r.size_bytes);
    put(os, r.is_write);
    put(os, r.outstanding);
  }
}

TraceSet read_binary(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("trace: bad magic");
  }
  const auto name_len = get<std::uint32_t>(is);
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  if (!is) throw std::runtime_error("trace: truncated name");
  const auto node_id = get<std::int32_t>(is);
  const auto duration = get<SimTime>(is);
  const auto count = get<std::uint64_t>(is);
  TraceSet ts(name, node_id);
  ts.set_duration(duration);
  for (std::uint64_t i = 0; i < count; ++i) {
    Record r;
    r.timestamp = get<SimTime>(is);
    r.sector = get<std::uint32_t>(is);
    r.size_bytes = get<std::uint32_t>(is);
    r.is_write = get<std::uint8_t>(is);
    r.outstanding = get<std::uint16_t>(is);
    ts.add(r);
  }
  return ts;
}

void write_binary_file(const TraceSet& ts, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  write_binary(ts, f);
}

TraceSet read_binary_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  return read_binary(f);
}

void write_csv_header(std::ostream& os) {
  os << "timestamp_us,sector,size_bytes,is_write,outstanding\n";
}

void write_csv_records(const Record* r, std::size_t n, std::ostream& os) {
  for (std::size_t i = 0; i < n; ++i) {
    os << r[i].timestamp << ',' << r[i].sector << ',' << r[i].size_bytes
       << ',' << static_cast<int>(r[i].is_write) << ',' << r[i].outstanding
       << '\n';
  }
}

void write_csv(const TraceSet& ts, std::ostream& os) {
  write_csv_header(os);
  write_csv_records(ts.records().data(), ts.records().size(), os);
}

void write_csv_file(const TraceSet& ts, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  write_csv(ts, f);
}

namespace {

/// Parses an unsigned decimal field bounded by `max`; false on anything
/// else (empty, sign, garbage, overflow) — a malformed row, not a throw.
bool parse_field(const std::string& s, std::uint64_t max, std::uint64_t& out) {
  if (s.empty() || s.size() > 20) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (std::uint64_t{0xFFFFFFFFFFFFFFFF} - (c - '0')) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v > max) return false;
  out = v;
  return true;
}

enum class RowParse { kOk, kRepaired, kBad };

RowParse parse_record(const std::string& line, Record& r) {
  std::vector<std::string> fields(1);
  for (const char c : line) {
    if (c == ',') {
      if (fields.size() >= 6) return RowParse::kBad;  // too many columns
      fields.emplace_back();
    } else {
      fields.back().push_back(c);
    }
  }
  bool repaired = false;
  // Whitespace padding around a value ("12, 34") is formatting damage, not
  // data damage: trim and remember that we did. Trimming runs first so a
  // trailing ", " reduces to a plain trailing delimiter below.
  for (auto& f : fields) {
    const auto b = f.find_first_not_of(" \t");
    const auto e = f.find_last_not_of(" \t");
    const std::string trimmed =
        b == std::string::npos ? std::string{} : f.substr(b, e - b + 1);
    if (trimmed.size() != f.size()) {
      f = trimmed;
      repaired = true;
    }
  }
  // A trailing delimiter ("...,1,") produces one extra empty field; dropping
  // it loses nothing, so the row is repairable rather than malformed.
  if (fields.size() == 6 && fields.back().empty()) {
    fields.pop_back();
    repaired = true;
  }
  if (fields.size() != 5) return RowParse::kBad;
  std::uint64_t ts = 0, sector = 0, size = 0, rw = 0, out = 0;
  if (!parse_field(fields[0], std::uint64_t{0xFFFFFFFFFFFFFFFF}, ts) ||
      !parse_field(fields[1], 0xFFFFFFFFu, sector) ||
      !parse_field(fields[2], 0xFFFFFFFFu, size) ||
      !parse_field(fields[3], 1, rw) ||
      !parse_field(fields[4], 0xFFFFu, out)) {
    return RowParse::kBad;  // out-of-range values are data damage: skip
  }
  r.timestamp = ts;
  r.sector = static_cast<std::uint32_t>(sector);
  r.size_bytes = static_cast<std::uint32_t>(size);
  r.is_write = static_cast<std::uint8_t>(rw);
  r.outstanding = static_cast<std::uint16_t>(out);
  return repaired ? RowParse::kRepaired : RowParse::kOk;
}

}  // namespace

TraceSet read_csv(std::istream& is, CsvReadStats* stats) {
  CsvReadStats local;
  CsvReadStats& st = stats != nullptr ? *stats : local;
  st = CsvReadStats{};
  TraceSet ts;
  std::string line;
  bool first_content = true;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    Record r;
    const RowParse p = parse_record(line, r);
    if (p != RowParse::kBad) {
      ts.add(r);
      ++st.rows;
      if (p == RowParse::kRepaired) ++st.repaired;
    } else if (first_content) {
      st.had_header = true;  // the column-name row
    } else {
      ++st.skipped;
    }
    first_content = false;
  }
  return ts;
}

TraceSet read_csv_file(const std::string& path, CsvReadStats* stats) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  return read_csv(f, stats);
}

}  // namespace ess::trace
