#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace ess::trace {
namespace {

constexpr char kMagic[8] = {'E', 'S', 'S', 'T', 'R', 'C', '0', '1'};

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) throw std::runtime_error("trace: truncated stream");
  return v;
}

}  // namespace

void write_binary(const TraceSet& ts, std::ostream& os) {
  os.write(kMagic, sizeof kMagic);
  const auto name = ts.experiment();
  put(os, static_cast<std::uint32_t>(name.size()));
  os.write(name.data(), static_cast<std::streamsize>(name.size()));
  put(os, static_cast<std::int32_t>(ts.node_id()));
  put(os, ts.duration());
  put(os, static_cast<std::uint64_t>(ts.size()));
  for (const auto& r : ts.records()) {
    put(os, r.timestamp);
    put(os, r.sector);
    put(os, r.size_bytes);
    put(os, r.is_write);
    put(os, r.outstanding);
  }
}

TraceSet read_binary(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("trace: bad magic");
  }
  const auto name_len = get<std::uint32_t>(is);
  std::string name(name_len, '\0');
  is.read(name.data(), name_len);
  if (!is) throw std::runtime_error("trace: truncated name");
  const auto node_id = get<std::int32_t>(is);
  const auto duration = get<SimTime>(is);
  const auto count = get<std::uint64_t>(is);
  TraceSet ts(name, node_id);
  ts.set_duration(duration);
  for (std::uint64_t i = 0; i < count; ++i) {
    Record r;
    r.timestamp = get<SimTime>(is);
    r.sector = get<std::uint32_t>(is);
    r.size_bytes = get<std::uint32_t>(is);
    r.is_write = get<std::uint8_t>(is);
    r.outstanding = get<std::uint16_t>(is);
    ts.add(r);
  }
  return ts;
}

void write_binary_file(const TraceSet& ts, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  write_binary(ts, f);
}

TraceSet read_binary_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  return read_binary(f);
}

void write_csv(const TraceSet& ts, std::ostream& os) {
  os << "timestamp_us,sector,size_bytes,is_write,outstanding\n";
  for (const auto& r : ts.records()) {
    os << r.timestamp << ',' << r.sector << ',' << r.size_bytes << ','
       << static_cast<int>(r.is_write) << ',' << r.outstanding << '\n';
  }
}

void write_csv_file(const TraceSet& ts, const std::string& path) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("trace: cannot open " + path);
  write_csv(ts, f);
}

}  // namespace ess::trace
