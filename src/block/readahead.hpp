// Sequential read-ahead policy.
//
// Tracks per-stream (per open file) access patterns. On a sequential streak
// the window doubles 1 -> 2 -> 4 -> 8 -> ... up to the ceiling; a seek
// resets it. The ceiling models the 16 KB primary cache of the Beowulf node
// ("requests approaching 16 KB ... are a result of the 16 KB cache").
#pragma once

#include <cstdint>

namespace ess::block {

class ReadAhead {
 public:
  explicit ReadAhead(std::uint32_t ceiling_blocks = 16)
      : ceiling_(ceiling_blocks) {}

  /// Report a logical read of [block, block+count) and get the number of
  /// extra blocks to read ahead beyond the request.
  std::uint32_t advise(std::uint64_t block, std::uint32_t count);

  void reset() { window_ = 0; next_expected_ = 0; }

  std::uint32_t window() const { return window_; }
  void set_ceiling(std::uint32_t c) { ceiling_ = c; }
  std::uint32_t ceiling() const { return ceiling_; }

 private:
  std::uint32_t ceiling_;
  std::uint32_t window_ = 0;        // current read-ahead size in blocks
  std::uint64_t next_expected_ = 0; // block that continues the streak
};

}  // namespace ess::block
