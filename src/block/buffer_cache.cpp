#include "block/buffer_cache.hpp"

#include <algorithm>
#include <memory>

namespace ess::block {
namespace {

std::uint64_t first_sector(BlockNo b) { return b * kSectorsPerBlock; }

}  // namespace

BufferCache::BufferCache(driver::IdeDriver& drv, CacheConfig cfg)
    : drv_(drv), cfg_(cfg) {}

void BufferCache::touch(BlockNo b) {
  const auto it = map_.find(b);
  lru_.erase(it->second.lru_pos);
  lru_.push_front(b);
  it->second.lru_pos = lru_.begin();
}

BufferCache::Buffer& BufferCache::insert(BlockNo b) {
  maybe_evict();
  lru_.push_front(b);
  auto [it, fresh] = map_.emplace(b, Buffer{});
  it->second.lru_pos = lru_.begin();
  return it->second;
}

void BufferCache::maybe_evict() {
  while (map_.size() >= cfg_.capacity_blocks) {
    // Scan from the LRU tail for a victim; dirty victims are flushed first
    // (a forced write-back, visible in the trace as an extra write).
    bool evicted = false;
    for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
      const BlockNo b = *rit;
      auto& buf = map_.at(b);
      if (buf.io_pending) continue;
      if (buf.dirty) {
        ++stats_.forced_evict_flushes;
        flush_blocks({b});
      }
      lru_.erase(std::next(rit).base());
      map_.erase(b);
      evicted = true;
      break;
    }
    if (!evicted) return;  // everything pinned by in-flight I/O
  }
}

void BufferCache::read_range(BlockNo first, std::uint32_t count, Done done) {
  struct Run {
    BlockNo first;
    std::uint32_t count;
  };
  std::vector<Run> runs;
  std::vector<BlockNo> waits;

  for (std::uint32_t i = 0; i < count; ++i) {
    const BlockNo b = first + i;
    const auto it = map_.find(b);
    if (it != map_.end()) {
      if (it->second.io_pending) {
        waits.push_back(b);
      } else {
        ++stats_.read_hits;
        touch(b);
      }
      continue;
    }
    ++stats_.read_misses;
    if (!runs.empty() &&
        runs.back().first + runs.back().count == b &&
        runs.back().count < cfg_.max_coalesce_blocks) {
      ++runs.back().count;
    } else {
      runs.push_back(Run{b, 1});
    }
  }

  if (runs.empty() && waits.empty()) {
    if (done) done();
    return;
  }
  // A shared countdown over (missing runs + in-flight waits).
  auto remaining = std::make_shared<std::size_t>(runs.size() + waits.size());
  auto fire = [remaining, done = std::move(done)]() {
    if (--*remaining == 0 && done) done();
  };
  for (const BlockNo b : waits) waiters_[b].push_back(fire);
  for (const auto& run : runs) issue_read_run(run.first, run.count, fire);
}

void BufferCache::issue_read_run(BlockNo first, std::uint32_t count,
                                 Done done) {
  for (std::uint32_t i = 0; i < count; ++i) {
    Buffer& buf = insert(first + i);
    buf.io_pending = true;
    ++pinned_count_;
  }
  ++stats_.read_requests;
  stats_.read_blocks += count;
  drv_.submit(first_sector(first), count * kSectorsPerBlock, disk::Dir::kRead,
              [this, first, count, done = std::move(done)] {
                for (std::uint32_t i = 0; i < count; ++i) {
                  const auto it = map_.find(first + i);
                  if (it != map_.end() && it->second.io_pending) {
                    it->second.io_pending = false;
                    --pinned_count_;
                  }
                  const auto w = waiters_.find(first + i);
                  if (w != waiters_.end()) {
                    auto cbs = std::move(w->second);
                    waiters_.erase(w);
                    for (auto& cb : cbs) cb();
                  }
                }
                // Reads may have pushed residency past capacity while the
                // blocks were pinned; reclaim now that they are evictable.
                maybe_evict();
                if (done) done();
              });
}

void BufferCache::write_range(BlockNo first, std::uint32_t count,
                              bool metadata) {
  const SimTime now = drv_.drive().now();
  for (std::uint32_t i = 0; i < count; ++i) {
    const BlockNo b = first + i;
    ++stats_.writes;
    const auto it = map_.find(b);
    if (it != map_.end()) {
      touch(b);
      it->second.metadata = metadata;
      if (!it->second.dirty) {
        it->second.dirty = true;
        it->second.dirty_since = now;
        ++dirty_count_;
      }
    } else {
      Buffer& buf = insert(b);
      buf.dirty = true;
      buf.metadata = metadata;
      buf.dirty_since = now;
      ++dirty_count_;
    }
  }
  // Over the dirty ratio: flush the oldest dirty blocks (bdflush wakeup).
  if (static_cast<double>(dirty_count_) >
      cfg_.dirty_ratio_limit * static_cast<double>(cfg_.capacity_blocks)) {
    bdflush_pass();
  }
}

void BufferCache::write_through(BlockNo first, std::uint32_t count,
                                Done done) {
  const SimTime now = drv_.drive().now();
  for (std::uint32_t i = 0; i < count; ++i) {
    const BlockNo b = first + i;
    ++stats_.writes;
    const auto it = map_.find(b);
    if (it == map_.end()) {
      insert(b);
    } else {
      touch(b);
      if (it->second.dirty) {
        it->second.dirty = false;
        --dirty_count_;
      }
    }
  }
  (void)now;
  std::uint32_t issued = 0;
  auto remaining = std::make_shared<std::size_t>(0);
  auto fire = [remaining, done = std::move(done)]() {
    if (--*remaining == 0 && done) done();
  };
  std::vector<std::pair<BlockNo, std::uint32_t>> runs;
  while (issued < count) {
    const std::uint32_t n =
        std::min(count - issued, cfg_.max_coalesce_blocks);
    runs.emplace_back(first + issued, n);
    issued += n;
  }
  *remaining = runs.size();
  for (const auto& [b, n] : runs) {
    ++stats_.writebacks;
    stats_.writeback_blocks += n;
    drv_.submit(first_sector(b), n * kSectorsPerBlock, disk::Dir::kWrite,
                fire);
  }
}

void BufferCache::sync() {
  std::vector<BlockNo> dirty;
  dirty.reserve(dirty_count_);
  for (const auto& [b, buf] : map_) {
    if (buf.dirty) dirty.push_back(b);
  }
  flush_blocks(std::move(dirty));
}

std::size_t BufferCache::bdflush_pass() {
  const SimTime now = drv_.drive().now();
  std::vector<std::pair<SimTime, BlockNo>> aged;  // (deadline, block)
  for (const auto& [b, buf] : map_) {
    if (!buf.dirty) continue;
    const SimTime limit =
        buf.metadata ? cfg_.metadata_age_limit : cfg_.dirty_age_limit;
    // Normalize: sort by flush deadline so the age test below is uniform.
    aged.emplace_back(buf.dirty_since + limit, b);
  }
  std::sort(aged.begin(), aged.end());

  // Flush every block past the age limit; additionally, if the dirty ratio
  // is exceeded, flush the oldest blocks until only `lo` remain dirty.
  const auto hi = static_cast<std::size_t>(
      cfg_.dirty_ratio_limit * static_cast<double>(cfg_.capacity_blocks));
  const std::size_t lo = hi / 2;
  const std::size_t must_drop = aged.size() > hi ? aged.size() - lo : 0;
  std::vector<BlockNo> to_flush;
  for (std::size_t i = 0; i < aged.size(); ++i) {
    const auto [deadline, b] = aged[i];
    if (deadline <= now || i < must_drop) to_flush.push_back(b);
  }
  const std::size_t n = to_flush.size();
  flush_blocks(std::move(to_flush));
  return n;
}

void BufferCache::flush_blocks(std::vector<BlockNo> blocks) {
  std::sort(blocks.begin(), blocks.end());
  blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());

  BlockNo run_first = 0;
  std::uint32_t run_len = 0;
  auto emit_run = [&] {
    if (run_len == 0) return;
    ++stats_.writebacks;
    stats_.writeback_blocks += run_len;
    drv_.submit(first_sector(run_first), run_len * kSectorsPerBlock,
                disk::Dir::kWrite);
    run_len = 0;
  };

  for (const BlockNo b : blocks) {
    const auto it = map_.find(b);
    if (it == map_.end() || !it->second.dirty) continue;
    it->second.dirty = false;
    --dirty_count_;
    if (run_len > 0 && b == run_first + run_len &&
        run_len < cfg_.max_coalesce_blocks) {
      ++run_len;
    } else {
      emit_run();
      run_first = b;
      run_len = 1;
    }
  }
  emit_run();
}

void BufferCache::invalidate(BlockNo b) {
  const auto it = map_.find(b);
  if (it == map_.end()) return;
  if (it->second.io_pending) return;  // keep; completion will clear state
  if (it->second.dirty) --dirty_count_;
  lru_.erase(it->second.lru_pos);
  map_.erase(it);
}

}  // namespace ess::block
