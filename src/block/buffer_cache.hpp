// The 1 KB buffer cache (Linux 1.x style) with write-behind and request
// coalescing.
//
// This layer is where the paper's request-size classes come from:
//  * a single cached block miss or metadata write  -> 1 KB physical request
//  * adjacent dirty blocks flushed together        -> 2 KB, 3 KB, ...
//  * sequential read-ahead windows                 -> up to the 16 KB cache
//    ceiling (32 KB under the combined load's enlarged I/O buffering)
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "driver/ide_driver.hpp"
#include "util/sim_time.hpp"

namespace ess::block {

/// Device block number; blocks are 1 KB = 2 sectors.
using BlockNo = std::uint64_t;

inline constexpr std::uint32_t kBlockSize = 1024;
inline constexpr std::uint32_t kSectorsPerBlock = kBlockSize / 512;

struct CacheConfig {
  std::size_t capacity_blocks = 3072;   // ~3 MB of a 16 MB node
  std::uint32_t max_coalesce_blocks = 16;  // physical request ceiling (16 KB)
  SimTime dirty_age_limit = sec(30);    // bdflush writes back older dirty
  // Metadata buffers (inodes, bitmaps, superblock) age out much faster, as
  // in Linux's bdflush — this is the dominant source of the baseline's
  // steady 1 KB write stream.
  SimTime metadata_age_limit = sec(5);
  SimTime bdflush_period = sec(5);
  double dirty_ratio_limit = 0.4;       // flush when > 40% of cache dirty
};

struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t writes = 0;            // logical block writes into cache
  std::uint64_t writebacks = 0;        // physical write requests issued
  std::uint64_t writeback_blocks = 0;
  std::uint64_t read_requests = 0;     // physical read requests issued
  std::uint64_t read_blocks = 0;
  std::uint64_t forced_evict_flushes = 0;
};

class BufferCache {
 public:
  using Done = std::function<void()>;

  BufferCache(driver::IdeDriver& drv, CacheConfig cfg);

  /// Ensure blocks [first, first+count) are resident, then invoke `done`.
  /// Missing runs are fetched with one physical request per contiguous run,
  /// each capped at max_coalesce_blocks.
  void read_range(BlockNo first, std::uint32_t count, Done done);

  /// Write blocks [first, first+count) into the cache (write-behind).
  /// Completes logically at once; dirty data reaches the disk via bdflush,
  /// sync(), or eviction pressure. `metadata` selects the fast aging class.
  void write_range(BlockNo first, std::uint32_t count, bool metadata = false);

  /// Write-through a block range: issue the physical write now (used for
  /// critical metadata and by O_SYNC-style paths). `done` optional.
  void write_through(BlockNo first, std::uint32_t count, Done done = {});

  /// Flush every dirty block (the update daemon's sync()).
  void sync();

  /// One bdflush pass: flush dirty blocks older than the age limit, or the
  /// oldest ones if the dirty ratio is exceeded. Returns blocks flushed.
  std::size_t bdflush_pass();

  bool resident(BlockNo b) const { return map_.count(b) != 0; }
  std::size_t resident_blocks() const { return map_.size(); }
  std::size_t dirty_blocks() const { return dirty_count_; }
  /// Blocks pinned by in-flight reads; these cannot be evicted, so
  /// residency may transiently exceed capacity by up to this many.
  std::size_t pinned_blocks() const { return pinned_count_; }
  const CacheStats& stats() const { return stats_; }
  const CacheConfig& config() const { return cfg_; }

  /// Raise/lower the physical request ceiling at runtime (the kernel grows
  /// its I/O buffering under combined load; the paper attributes the
  /// 16-32 KB class to this).
  void set_max_coalesce_blocks(std::uint32_t n) { cfg_.max_coalesce_blocks = n; }

  /// Drop a clean block (e.g., file deleted). Dirty blocks are discarded too.
  void invalidate(BlockNo b);

 private:
  struct Buffer {
    bool dirty = false;
    bool metadata = false;           // fast-aging write-back class
    bool io_pending = false;         // a read for this block is in flight
    SimTime dirty_since = 0;
    std::list<BlockNo>::iterator lru_pos;
  };

  void touch(BlockNo b);
  Buffer& insert(BlockNo b);
  void maybe_evict();
  /// Flush a sorted list of dirty block numbers, coalescing adjacent runs.
  void flush_blocks(std::vector<BlockNo> blocks);
  void issue_read_run(BlockNo first, std::uint32_t count, Done done);

  driver::IdeDriver& drv_;
  CacheConfig cfg_;
  std::unordered_map<BlockNo, Buffer> map_;
  std::list<BlockNo> lru_;  // front = most recent
  std::size_t dirty_count_ = 0;
  std::size_t pinned_count_ = 0;
  CacheStats stats_;
  // Readers waiting for an in-flight block.
  std::unordered_map<BlockNo, std::vector<Done>> waiters_;
};

}  // namespace ess::block
