#include "block/readahead.hpp"

#include <algorithm>

namespace ess::block {

std::uint32_t ReadAhead::advise(std::uint64_t block, std::uint32_t count) {
  // Sequential means the application continues where its previous read
  // ended — the read-ahead overshoot is not counted, since the next app
  // read lands before the window's end (partially cache-hot).
  const bool sequential = next_expected_ != 0 && block == next_expected_;
  if (sequential) {
    window_ = std::min(ceiling_, window_ == 0 ? 2u : window_ * 2u);
  } else {
    window_ = 0;  // a seek: no read-ahead until the stream looks sequential
  }
  next_expected_ = block + count;
  return window_;
}

}  // namespace ess::block
