#include "mm/vm.hpp"

#include <stdexcept>

namespace ess::mm {

Vm::Vm(FramePool& frames, SwapManager& swap, block::BufferCache& cache)
    : frames_(frames), swap_(swap), cache_(cache) {}

void Vm::create_address_space(Pid pid, std::vector<Segment> segments) {
  if (spaces_.count(pid)) throw std::logic_error("Vm: pid already mapped");
  spaces_.emplace(pid, AddressSpace{std::move(segments), {}});
}

void Vm::destroy_address_space(Pid pid) {
  const auto it = spaces_.find(pid);
  if (it == spaces_.end()) return;
  for (auto& [vpage, ps] : it->second.pages) {
    if (ps.present) frames_.release(ps.frame);
    if (ps.swap_slot) swap_.free_slot(*ps.swap_slot);
  }
  spaces_.erase(it);
}

const Segment* Vm::find_segment(const AddressSpace& as, VPage vpage) const {
  for (const auto& seg : as.segments) {
    if (vpage >= seg.first_page && vpage < seg.first_page + seg.page_count) {
      return &seg;
    }
  }
  return nullptr;
}

FrameNo Vm::obtain_frame(Pid pid, VPage vpage) {
  if (const auto f = frames_.allocate(pid, vpage)) return *f;

  // Memory pressure: evict a victim (second-chance clock), swapping it out
  // if it carries dirty anonymous data.
  const auto victim = frames_.pick_victim();
  if (!victim) throw std::logic_error("Vm: no evictable frame");
  const Frame fr = frames_.frame(*victim);
  ++stats_.evictions;

  auto& vas = spaces_.at(fr.pid);
  auto& vps = vas.pages.at(fr.vpage);
  if (fr.dirty) {
    // Written pages must be preserved in swap. Clean pages are dropped:
    // file-backed ones can be re-read from the file, never-written
    // anonymous ones are re-zero-filled, and previously-swapped clean
    // pages still have a valid copy in their slot.
    if (!vps.swap_slot) {
      const auto slot = swap_.allocate();
      if (!slot) throw std::runtime_error("Vm: swap space exhausted");
      vps.swap_slot = slot;
    }
    swap_.swap_out(*vps.swap_slot);
    ++stats_.swap_outs;
  }
  vps.present = false;
  frames_.release(*victim);

  const auto f = frames_.allocate(pid, vpage);
  if (!f) throw std::logic_error("Vm: allocation failed after eviction");
  return *f;
}

void Vm::touch(Pid pid, VPage vpage, bool is_write,
               std::function<void(FaultKind)> done) {
  ++stats_.touches;
  auto& as = spaces_.at(pid);
  const Segment* seg = find_segment(as, vpage);
  if (seg == nullptr) {
    throw std::out_of_range("Vm: touch outside any segment (segfault)");
  }

  auto& ps = as.pages[vpage];
  if (ps.present) {
    frames_.mark_referenced(ps.frame, is_write);
    done(FaultKind::kNone);
    return;
  }

  const FrameNo f = obtain_frame(pid, vpage);
  ps.present = true;
  ps.frame = f;
  frames_.mark_referenced(f, is_write);

  if (ps.swap_slot) {
    // Page went to swap earlier: swap it back in (raw 4 KB read).
    ++stats_.major_faults;
    ++stats_.swap_ins;
    swap_.swap_in(*ps.swap_slot, [done = std::move(done)] {
      done(FaultKind::kMajor);
    });
    return;
  }
  if (seg->file_backed) {
    // Demand-load from the executable/image file through the buffer cache:
    // one page = 4 consecutive 1 KB blocks, coalesced to a 4 KB request
    // when none are cached.
    ++stats_.major_faults;
    ++stats_.file_page_ins;
    const block::BlockNo first =
        seg->file_start_block + (vpage - seg->first_page) * (kPageSize / 1024);
    cache_.read_range(first, kPageSize / 1024, [done = std::move(done)] {
      done(FaultKind::kMajor);
    });
    return;
  }
  // Anonymous first touch: zero-fill, no I/O.
  ++stats_.minor_faults;
  done(FaultKind::kMinor);
}

std::uint64_t Vm::resident_pages(Pid pid) const {
  const auto it = spaces_.find(pid);
  if (it == spaces_.end()) return 0;
  std::uint64_t n = 0;
  for (const auto& [vp, ps] : it->second.pages) {
    if (ps.present) ++n;
  }
  return n;
}

}  // namespace ess::mm
