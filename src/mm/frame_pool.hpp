// Physical page frames and the LRU-clock replacement policy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace ess::mm {

using FrameNo = std::uint32_t;
using Pid = std::uint32_t;
using VPage = std::uint64_t;

inline constexpr std::uint32_t kPageSize = 4096;

struct Frame {
  bool in_use = false;
  Pid pid = 0;
  VPage vpage = 0;
  bool referenced = false;
  bool dirty = false;
};

/// All user-allocatable frames of the node (RAM minus kernel + buffer
/// cache residency). Victim selection is a second-chance clock.
class FramePool {
 public:
  explicit FramePool(std::uint32_t frame_count);

  std::uint32_t total() const { return static_cast<std::uint32_t>(frames_.size()); }
  std::uint32_t used() const { return used_; }
  std::uint32_t free() const { return total() - used_; }

  /// Allocate a free frame, or nullopt if none (caller must evict first).
  std::optional<FrameNo> allocate(Pid pid, VPage vpage);

  /// Pick an eviction victim with the clock algorithm. Frames belonging to
  /// `skip_pid` == 0 means consider all. Returns nullopt only if no frame
  /// is in use.
  std::optional<FrameNo> pick_victim();

  void release(FrameNo f);
  void mark_referenced(FrameNo f, bool dirty_write);

  Frame& frame(FrameNo f) { return frames_.at(f); }
  const Frame& frame(FrameNo f) const { return frames_.at(f); }

 private:
  std::vector<Frame> frames_;
  std::vector<FrameNo> free_list_;
  std::uint32_t used_ = 0;
  std::uint32_t clock_hand_ = 0;
};

}  // namespace ess::mm
