// Demand-paged virtual memory for the simulated node.
//
// Address spaces are segment lists: file-backed segments (program text and
// initialized data, demand-loaded from the executable's blocks through the
// buffer cache, which coalesces the four 1 KB blocks of a page into one
// 4 KB read) and anonymous segments (zero-fill on first touch; dirty
// evictions go to swap as raw 4 KB writes).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "block/buffer_cache.hpp"
#include "mm/frame_pool.hpp"
#include "mm/swap.hpp"

namespace ess::mm {

enum class FaultKind : std::uint8_t {
  kNone = 0,   // page was resident
  kMinor = 1,  // satisfied without I/O (zero-fill)
  kMajor = 2,  // required a disk read (file page-in or swap-in)
};

struct VmStats {
  std::uint64_t touches = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t file_page_ins = 0;
  std::uint64_t swap_ins = 0;
  std::uint64_t swap_outs = 0;
  std::uint64_t evictions = 0;
};

struct Segment {
  VPage first_page = 0;
  std::uint64_t page_count = 0;
  bool file_backed = false;
  /// For file-backed segments: device block of the file's first byte; page
  /// p of the segment lives at file_start_block + p * 4 (pages are 4
  /// consecutive 1 KB blocks; the image files are allocated contiguously).
  block::BlockNo file_start_block = 0;
};

class Vm {
 public:
  Vm(FramePool& frames, SwapManager& swap, block::BufferCache& cache);

  /// Register a process address space.
  void create_address_space(Pid pid, std::vector<Segment> segments);
  void destroy_address_space(Pid pid);

  /// Touch a virtual page. `done(kind)` fires when the access can proceed —
  /// synchronously for resident/zero-fill pages, after disk I/O for major
  /// faults. Eviction of a dirty victim issues its swap-out write first.
  void touch(Pid pid, VPage vpage, bool is_write,
             std::function<void(FaultKind)> done);

  /// Resident set size of a process, in pages.
  std::uint64_t resident_pages(Pid pid) const;

  const VmStats& stats() const { return stats_; }
  FramePool& frames() { return frames_; }
  SwapManager& swap() { return swap_; }

 private:
  struct PageState {
    bool present = false;
    FrameNo frame = 0;
    std::optional<SwapSlot> swap_slot;
  };
  struct AddressSpace {
    std::vector<Segment> segments;
    std::unordered_map<VPage, PageState> pages;
  };

  const Segment* find_segment(const AddressSpace& as, VPage vpage) const;
  FrameNo obtain_frame(Pid pid, VPage vpage);

  FramePool& frames_;
  SwapManager& swap_;
  block::BufferCache& cache_;
  std::unordered_map<Pid, AddressSpace> spaces_;
  VmStats stats_;
};

}  // namespace ess::mm
