// The swap area: a fixed sector range of the disk, divided into 4 KB slots.
// Swap I/O bypasses the buffer cache (as in Linux 1.x) and therefore always
// appears as raw 4 KB physical requests — the paper's "paging" class.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "driver/ide_driver.hpp"
#include "mm/frame_pool.hpp"

namespace ess::mm {

using SwapSlot = std::uint32_t;

class SwapManager {
 public:
  /// The swap area covers sectors [start, start + slot_count * 8).
  SwapManager(driver::IdeDriver& drv, std::uint64_t start_sector,
              std::uint32_t slot_count);

  std::optional<SwapSlot> allocate();
  void free_slot(SwapSlot s);

  /// Write one page to a slot (fire-and-forget; the frame is reusable at
  /// once in this model — data is conceptually copied at issue).
  void swap_out(SwapSlot s);

  /// Read one page from a slot; `done` fires at completion.
  void swap_in(SwapSlot s, std::function<void()> done);

  std::uint32_t slots_total() const { return static_cast<std::uint32_t>(used_.size()); }
  std::uint32_t slots_used() const { return used_count_; }
  std::uint64_t swap_outs() const { return outs_; }
  std::uint64_t swap_ins() const { return ins_; }
  std::uint64_t start_sector() const { return start_sector_; }

 private:
  std::uint64_t slot_sector(SwapSlot s) const {
    return start_sector_ + std::uint64_t{s} * (kPageSize / 512);
  }

  driver::IdeDriver& drv_;
  std::uint64_t start_sector_;
  std::vector<bool> used_;
  std::uint32_t used_count_ = 0;
  std::uint32_t next_hint_ = 0;
  std::uint64_t outs_ = 0;
  std::uint64_t ins_ = 0;
};

}  // namespace ess::mm
