#include "mm/swap.hpp"

#include <stdexcept>

namespace ess::mm {

SwapManager::SwapManager(driver::IdeDriver& drv, std::uint64_t start_sector,
                         std::uint32_t slot_count)
    : drv_(drv), start_sector_(start_sector), used_(slot_count, false) {}

std::optional<SwapSlot> SwapManager::allocate() {
  const auto n = static_cast<std::uint32_t>(used_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    const SwapSlot s = (next_hint_ + i) % n;
    if (!used_[s]) {
      used_[s] = true;
      ++used_count_;
      next_hint_ = (s + 1) % n;
      return s;
    }
  }
  return std::nullopt;  // swap full
}

void SwapManager::free_slot(SwapSlot s) {
  if (!used_.at(s)) throw std::logic_error("SwapManager: double free");
  used_[s] = false;
  --used_count_;
}

void SwapManager::swap_out(SwapSlot s) {
  ++outs_;
  drv_.submit(slot_sector(s), kPageSize / 512, disk::Dir::kWrite);
}

void SwapManager::swap_in(SwapSlot s, std::function<void()> done) {
  ++ins_;
  drv_.submit(slot_sector(s), kPageSize / 512, disk::Dir::kRead,
              std::move(done));
}

}  // namespace ess::mm
