#include "mm/frame_pool.hpp"

#include <stdexcept>

namespace ess::mm {

FramePool::FramePool(std::uint32_t frame_count) : frames_(frame_count) {
  free_list_.reserve(frame_count);
  for (std::uint32_t i = frame_count; i > 0; --i) free_list_.push_back(i - 1);
}

std::optional<FrameNo> FramePool::allocate(Pid pid, VPage vpage) {
  if (free_list_.empty()) return std::nullopt;
  const FrameNo f = free_list_.back();
  free_list_.pop_back();
  Frame& fr = frames_[f];
  fr.in_use = true;
  fr.pid = pid;
  fr.vpage = vpage;
  fr.referenced = true;
  fr.dirty = false;
  ++used_;
  return f;
}

std::optional<FrameNo> FramePool::pick_victim() {
  if (used_ == 0) return std::nullopt;
  // Two full sweeps guarantee a victim: the first pass clears referenced
  // bits, the second finds one clear.
  const auto n = static_cast<std::uint32_t>(frames_.size());
  for (std::uint32_t step = 0; step < 2 * n; ++step) {
    Frame& fr = frames_[clock_hand_];
    const FrameNo current = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (!fr.in_use) continue;
    if (fr.referenced) {
      fr.referenced = false;
      continue;
    }
    return current;
  }
  throw std::logic_error("FramePool: clock failed to find a victim");
}

void FramePool::release(FrameNo f) {
  Frame& fr = frames_.at(f);
  if (!fr.in_use) throw std::logic_error("FramePool: double release");
  fr = Frame{};
  free_list_.push_back(f);
  --used_;
}

void FramePool::mark_referenced(FrameNo f, bool dirty_write) {
  Frame& fr = frames_.at(f);
  fr.referenced = true;
  if (dirty_write) fr.dirty = true;
}

}  // namespace ess::mm
