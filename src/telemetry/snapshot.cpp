#include "telemetry/snapshot.hpp"

#include <cstdio>

namespace ess::telemetry {

SnapshotEmitter::SnapshotEmitter(const StreamSummary& source, SimTime period,
                                 Callback cb)
    : source_(source),
      period_(period > 0 ? period : sec(60)),
      next_(period_),
      cb_(std::move(cb)) {}

void SnapshotEmitter::on_record(const trace::Record& r) {
  while (r.timestamp >= next_) {
    Snapshot s = make(next_, false);
    ++emitted_;
    if (cb_) cb_(s);
    next_ += period_;
  }
}

void SnapshotEmitter::on_finish(SimTime duration) {
  Snapshot s = make(duration > 0 ? duration : source_.last_timestamp(), true);
  ++emitted_;
  if (cb_) cb_(s);
}

Snapshot SnapshotEmitter::make(SimTime t, bool final_snapshot) const {
  Snapshot s;
  s.t = t;
  s.records = source_.records();
  s.reads = source_.rw().reads();
  s.writes = source_.rw().writes();
  s.write_pct = source_.rw().write_pct();
  s.recent_rate = source_.sliding_rate().rate();
  s.max_request_bytes = source_.sizes().max_request_bytes();
  const auto top = source_.hot().top(1);
  if (!top.empty()) {
    s.top_sector = top.front().sector;
    s.top_count = top.front().count;
  }
  s.final_snapshot = final_snapshot;
  return s;
}

std::string render_progress_line(const Snapshot& s) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "t=%6.0fs  n=%8llu  w=%5.1f%%  %7.2f req/s  max=%3u KB  "
                "hot=%llu x%llu%s",
                to_seconds(s.t),
                static_cast<unsigned long long>(s.records), s.write_pct,
                s.recent_rate, s.max_request_bytes / 1024,
                static_cast<unsigned long long>(s.top_sector),
                static_cast<unsigned long long>(s.top_count),
                s.final_snapshot ? "  [final]" : "");
  return buf;
}

}  // namespace ess::telemetry
