#include "telemetry/consumers.hpp"

#include <algorithm>

namespace ess::telemetry {

double SizeHistogramConsumer::fraction_at_least(std::uint32_t bytes) const {
  if (hist_.total() == 0) return 0.0;
  std::uint64_t n = 0;
  for (const auto& [size, count] : hist_.cells()) {
    if (size >= static_cast<std::int64_t>(bytes)) n += count;
  }
  return static_cast<double>(n) / static_cast<double>(hist_.total());
}

double RwMixConsumer::read_pct() const {
  const auto t = total();
  return t > 0 ? 100.0 * static_cast<double>(reads_) / static_cast<double>(t)
               : 0.0;
}

double RwMixConsumer::write_pct() const {
  return total() > 0 ? 100.0 - read_pct() : 0.0;
}

double RwMixConsumer::requests_per_sec() const {
  const double dur = to_seconds(duration_);
  return dur > 0 ? static_cast<double>(total()) / dur : 0.0;
}

void SlidingRateConsumer::on_record(const trace::Record& r) {
  recent_.push_back(r.timestamp);
  const SimTime horizon =
      r.timestamp > window_ ? r.timestamp - window_ : SimTime{0};
  while (!recent_.empty() && recent_.front() < horizon) recent_.pop_front();
}

double SlidingRateConsumer::rate() const {
  if (recent_.empty() || window_ == 0) return 0.0;
  return static_cast<double>(recent_.size()) / to_seconds(window_);
}

void WindowRateConsumer::on_record(const trace::Record& r) {
  if (window_ == 0) return;
  const std::size_t w = static_cast<std::size_t>(r.timestamp / window_);
  if (w >= counts_.size()) counts_.resize(w + 1, 0);
  ++counts_[w];
}

void WindowRateConsumer::on_finish(SimTime duration) {
  series_.clear();
  if (duration == 0 || window_ == 0) return;
  const std::size_t n =
      static_cast<std::size_t>((duration + window_ - 1) / window_);
  series_.assign(n, 0.0);
  for (std::size_t w = 0; w < counts_.size(); ++w) {
    // Records past the nominal duration clamp into the last window, the
    // same as analysis::rate_over_time.
    series_[std::min(w, n - 1)] += static_cast<double>(counts_[w]);
  }
  const double wsec = to_seconds(window_);
  for (auto& v : series_) v /= wsec;
}

std::vector<SpatialBandsConsumer::Band> SpatialBandsConsumer::bands() const {
  std::vector<Band> out;
  out.reserve(bands_.size());
  const auto total = static_cast<double>(total_);
  for (const auto& [start, n] : bands_) {
    out.push_back(Band{start, n,
                       total > 0 ? 100.0 * static_cast<double>(n) / total
                                 : 0.0});
  }
  return out;
}

TopKSectorsConsumer::TopKSectorsConsumer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  entries_.reserve(std::min<std::size_t>(capacity_, 1 << 16));
}

void TopKSectorsConsumer::on_record(const trace::Record& r) {
  const std::uint64_t sector = r.sector;
  if (const auto it = where_.find(sector); it != where_.end()) {
    ++entries_[it->second].count;
    return;
  }
  if (entries_.size() < capacity_) {
    where_.emplace(sector, entries_.size());
    entries_.push_back(Entry{sector, 1, 0, 0.0});
    return;
  }
  // Replace the minimum counter (Space-Saving). A linear scan per eviction
  // is fine at this study's scale: evictions only happen once the distinct
  // population exceeds the (generous) capacity.
  exact_ = false;
  std::size_t victim = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[victim].count) victim = i;
  }
  where_.erase(entries_[victim].sector);
  const std::uint64_t floor = entries_[victim].count;
  entries_[victim] = Entry{sector, floor + 1, floor, 0.0};
  where_.emplace(sector, victim);
}

std::vector<TopKSectorsConsumer::Entry> TopKSectorsConsumer::top(
    std::size_t k) const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.sector < b.sector;
  });
  if (out.size() > k) out.resize(k);
  const double dur = to_seconds(duration_);
  for (auto& e : out) {
    e.per_sec = dur > 0 ? static_cast<double>(e.count) / dur : 0.0;
  }
  return out;
}

StreamSummary::StreamSummary(const Options& opts)
    : spatial_(opts.band_sectors),
      hot_(opts.topk_capacity),
      sliding_(opts.sliding_window) {}

void StreamSummary::on_record(const trace::Record& r) {
  sizes_.on_record(r);
  rw_.on_record(r);
  spatial_.on_record(r);
  hot_.on_record(r);
  sliding_.on_record(r);
  last_ts_ = std::max(last_ts_, r.timestamp);
}

void StreamSummary::on_finish(SimTime duration) {
  duration_ = duration > 0 ? duration : last_ts_;
  sizes_.on_finish(duration_);
  rw_.on_finish(duration_);
  spatial_.on_finish(duration_);
  hot_.on_finish(duration_);
  sliding_.on_finish(duration_);
  finished_ = true;
}

StreamSummary::Result StreamSummary::result(
    const std::string& experiment) const {
  Result res;
  res.experiment = experiment;
  res.records = records();
  res.duration_sec = to_seconds(finished_ ? duration_ : last_ts_);
  res.reads = rw_.reads();
  res.writes = rw_.writes();
  res.read_pct = rw_.read_pct();
  res.write_pct = rw_.write_pct();
  res.requests_per_sec =
      res.duration_sec > 0
          ? static_cast<double>(res.records) / res.duration_sec
          : 0.0;
  res.max_request_bytes = sizes_.max_request_bytes();
  for (const auto& [size, count] : sizes_.histogram().cells()) {
    res.size_pct[size] = res.records > 0
                             ? 100.0 * static_cast<double>(count) /
                                   static_cast<double>(res.records)
                             : 0.0;
  }
  for (const auto& b : spatial_.bands()) {
    res.band_pct[b.band_start_sector] = b.pct;
  }
  res.hot = hot_.top(10);
  res.hot_exact = hot_.exact();
  res.dropped_records = dropped_;
  res.lossy = dropped_ > 0;
  return res;
}

}  // namespace ess::telemetry
