#include "telemetry/consumers.hpp"

#include <algorithm>
#include <limits>

namespace ess::telemetry {

double SizeHistogramConsumer::fraction_at_least(std::uint32_t bytes) const {
  if (hist_.total() == 0) return 0.0;
  std::uint64_t n = 0;
  for (const auto& [size, count] : hist_.cells()) {
    if (size >= static_cast<std::int64_t>(bytes)) n += count;
  }
  return static_cast<double>(n) / static_cast<double>(hist_.total());
}

double RwMixConsumer::read_pct() const {
  const auto t = total();
  return t > 0 ? 100.0 * static_cast<double>(reads_) / static_cast<double>(t)
               : 0.0;
}

double RwMixConsumer::write_pct() const {
  return total() > 0 ? 100.0 - read_pct() : 0.0;
}

double RwMixConsumer::requests_per_sec() const {
  const double dur = to_seconds(duration_);
  return dur > 0 ? static_cast<double>(total()) / dur : 0.0;
}

void SlidingRateConsumer::on_record(const trace::Record& r) {
  recent_.push_back(r.timestamp);
  const SimTime horizon =
      r.timestamp > window_ ? r.timestamp - window_ : SimTime{0};
  while (!recent_.empty() && recent_.front() < horizon) recent_.pop_front();
}

void SlidingRateConsumer::merge(const SlidingRateConsumer& other) {
  if (other.recent_.empty()) return;
  // `other` saw the later segment, so its last record is the stream's last
  // record: evict our timestamps that fell out of its window, then append.
  // `other`'s own eviction already bounded its deque to that window, so
  // the result is exactly the deque one pass would have left.
  const SimTime last = other.recent_.back();
  const SimTime horizon = last > window_ ? last - window_ : SimTime{0};
  while (!recent_.empty() && recent_.front() < horizon) recent_.pop_front();
  recent_.insert(recent_.end(), other.recent_.begin(), other.recent_.end());
}

double SlidingRateConsumer::rate() const {
  if (recent_.empty() || window_ == 0) return 0.0;
  return static_cast<double>(recent_.size()) / to_seconds(window_);
}

void WindowRateConsumer::on_record(const trace::Record& r) {
  if (window_ == 0) return;
  const std::size_t w = static_cast<std::size_t>(r.timestamp / window_);
  if (w >= counts_.size()) counts_.resize(w + 1, 0);
  ++counts_[w];
}

void WindowRateConsumer::on_finish(SimTime duration) {
  series_.clear();
  if (duration == 0 || window_ == 0) return;
  const std::size_t n =
      static_cast<std::size_t>((duration + window_ - 1) / window_);
  series_.assign(n, 0.0);
  for (std::size_t w = 0; w < counts_.size(); ++w) {
    // Records past the nominal duration clamp into the last window, the
    // same as analysis::rate_over_time.
    series_[std::min(w, n - 1)] += static_cast<double>(counts_[w]);
  }
  const double wsec = to_seconds(window_);
  for (auto& v : series_) v /= wsec;
}

void WindowRateConsumer::merge(const WindowRateConsumer& other) {
  if (counts_.size() < other.counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t w = 0; w < other.counts_.size(); ++w) {
    counts_[w] += other.counts_[w];
  }
}

void SpatialBandsConsumer::merge(const SpatialBandsConsumer& other) {
  for (const auto& [start, n] : other.bands_) bands_[start] += n;
  total_ += other.total_;
}

std::vector<SpatialBandsConsumer::Band> SpatialBandsConsumer::bands() const {
  std::vector<Band> out;
  out.reserve(bands_.size());
  const auto total = static_cast<double>(total_);
  for (const auto& [start, n] : bands_) {
    out.push_back(Band{start, n,
                       total > 0 ? 100.0 * static_cast<double>(n) / total
                                 : 0.0});
  }
  return out;
}

TopKSectorsConsumer::TopKSectorsConsumer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  entries_.reserve(std::min<std::size_t>(capacity_, 1 << 16));
}

void TopKSectorsConsumer::on_record(const trace::Record& r) {
  const std::uint64_t sector = r.sector;
  if (const auto it = where_.find(sector); it != where_.end()) {
    ++entries_[it->second].count;
    return;
  }
  if (entries_.size() < capacity_) {
    where_.emplace(sector, entries_.size());
    entries_.push_back(Entry{sector, 1, 0, 0.0});
    return;
  }
  // Replace the minimum counter (Space-Saving).
  exact_ = false;
  const std::size_t victim = take_min_slot();
  where_.erase(entries_[victim].sector);
  const std::uint64_t floor = entries_[victim].count;
  entries_[victim] = Entry{sector, floor + 1, floor, 0.0};
  where_.emplace(sector, victim);
}

std::size_t TopKSectorsConsumer::take_min_slot() {
  // A linear min-scan per eviction makes dominantly-distinct streams
  // quadratic in the capacity, so the minimum is tracked lazily instead:
  // rescan once, stack every slot at the minimum (descending, so pops walk
  // ascending — the same lowest-index victim the scan would pick), then
  // serve evictions from the stack. Counts only grow, which keeps the
  // invariant that every slot at the current minimum is on the stack;
  // incremented slots go stale and are skipped on pop. Each rescan is paid
  // for by the pops it feeds: amortized O(1) per eviction.
  while (true) {
    while (!min_candidates_.empty()) {
      const std::size_t i = min_candidates_.back();
      min_candidates_.pop_back();
      if (entries_[i].count == min_count_) return i;
    }
    min_count_ = entries_.front().count;
    for (const Entry& e : entries_) min_count_ = std::min(min_count_, e.count);
    for (std::size_t i = entries_.size(); i-- > 0;) {
      if (entries_[i].count == min_count_) min_candidates_.push_back(i);
    }
  }
}

void TopKSectorsConsumer::merge(const TopKSectorsConsumer& other) {
  // An inexact sketch may have seen a sector it no longer tracks up to its
  // minimum counter many times; a sector absent from that side absorbs
  // that floor into both count and error (keeping count an upper bound and
  // count - error a lower bound). Exact sketches have floor 0.
  const auto floor_of = [](const TopKSectorsConsumer& c) -> std::uint64_t {
    if (c.exact_ || c.entries_.empty()) return 0;
    std::uint64_t m = std::numeric_limits<std::uint64_t>::max();
    for (const auto& e : c.entries_) m = std::min(m, e.count);
    return m;
  };
  const std::uint64_t floor_mine = floor_of(*this);
  const std::uint64_t floor_other = floor_of(other);

  // Union in place through the index this side already maintains: shared
  // sectors sum into our slot, unseen ones queue for appending. One probe
  // per entry of `other` — no scratch map of the whole union (this merge
  // sits on the parallel scan's fold path, where it used to dominate the
  // fan-out's winnings).
  std::vector<char> in_other(entries_.size(), 0);
  std::vector<Entry> incoming;
  incoming.reserve(other.entries_.size());
  for (const auto& e : other.entries_) {
    const auto it = where_.find(e.sector);
    if (it != where_.end()) {
      entries_[it->second].count += e.count;
      entries_[it->second].error += e.error;
      in_other[it->second] = 1;
    } else {
      incoming.push_back(e);
      incoming.back().count += floor_mine;
      incoming.back().error += floor_mine;
    }
  }
  for (std::size_t i = 0; i < in_other.size(); ++i) {
    if (in_other[i] == 0) {
      entries_[i].count += floor_other;
      entries_[i].error += floor_other;
    }
  }
  entries_.insert(entries_.end(), incoming.begin(), incoming.end());

  const auto by_rank = [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.sector < b.sector;
  };
  // Truncating to capacity keeps the Space-Saving invariant: everything
  // dropped counted at most the retained minimum, so a later arrival of an
  // untracked sector still inherits a valid overcount bound. Select the
  // survivors first so only they pay for the full ordering.
  exact_ = exact_ && other.exact_ && entries_.size() <= capacity_;
  if (entries_.size() > capacity_) {
    std::nth_element(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(capacity_),
                     entries_.end(), by_rank);
    entries_.resize(capacity_);
  }
  std::sort(entries_.begin(), entries_.end(), by_rank);
  where_.clear();
  where_.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    where_.emplace(entries_[i].sector, i);
  }
  // Slots moved; the next eviction rescans for the new minimum.
  min_candidates_.clear();
  min_count_ = 0;
  duration_ = std::max(duration_, other.duration_);
}

std::vector<TopKSectorsConsumer::Entry> TopKSectorsConsumer::top(
    std::size_t k) const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.sector < b.sector;
  });
  if (out.size() > k) out.resize(k);
  const double dur = to_seconds(duration_);
  for (auto& e : out) {
    e.per_sec = dur > 0 ? static_cast<double>(e.count) / dur : 0.0;
  }
  return out;
}

StreamSummary::StreamSummary(const Options& opts)
    : spatial_(opts.band_sectors),
      hot_(opts.topk_capacity),
      sliding_(opts.sliding_window) {}

void StreamSummary::on_record(const trace::Record& r) {
  sizes_.on_record(r);
  rw_.on_record(r);
  spatial_.on_record(r);
  hot_.on_record(r);
  sliding_.on_record(r);
  per_node_.on_record(r);
  last_ts_ = std::max(last_ts_, r.timestamp);
}

void StreamSummary::merge(const StreamSummary& other) {
  sizes_.merge(other.sizes_);
  rw_.merge(other.rw_);
  spatial_.merge(other.spatial_);
  hot_.merge(other.hot_);
  sliding_.merge(other.sliding_);
  per_node_.merge(other.per_node_);
  last_ts_ = std::max(last_ts_, other.last_ts_);
  dropped_ += other.dropped_;
}

void StreamSummary::on_finish(SimTime duration) {
  duration_ = duration > 0 ? duration : last_ts_;
  sizes_.on_finish(duration_);
  rw_.on_finish(duration_);
  spatial_.on_finish(duration_);
  hot_.on_finish(duration_);
  sliding_.on_finish(duration_);
  finished_ = true;
}

StreamSummary::Result StreamSummary::result(
    const std::string& experiment) const {
  Result res;
  res.experiment = experiment;
  res.records = records();
  res.duration_sec = to_seconds(finished_ ? duration_ : last_ts_);
  res.reads = rw_.reads();
  res.writes = rw_.writes();
  res.read_pct = rw_.read_pct();
  res.write_pct = rw_.write_pct();
  res.requests_per_sec =
      res.duration_sec > 0
          ? static_cast<double>(res.records) / res.duration_sec
          : 0.0;
  res.max_request_bytes = sizes_.max_request_bytes();
  for (const auto& [size, count] : sizes_.histogram().cells()) {
    res.size_pct[size] = res.records > 0
                             ? 100.0 * static_cast<double>(count) /
                                   static_cast<double>(res.records)
                             : 0.0;
  }
  for (const auto& b : spatial_.bands()) {
    res.band_pct[b.band_start_sector] = b.pct;
  }
  res.hot = hot_.top(10);
  res.hot_exact = hot_.exact();
  if (per_node_.distinct_nodes() > 1) {
    for (const auto& [node, c] : per_node_.nodes()) {
      Result::NodeRow row;
      row.node = node;
      row.records = c.total();
      row.reads = c.reads;
      row.writes = c.writes;
      row.read_pct = c.total() > 0 ? 100.0 * static_cast<double>(c.reads) /
                                         static_cast<double>(c.total())
                                   : 0.0;
      row.requests_per_sec =
          res.duration_sec > 0
              ? static_cast<double>(c.total()) / res.duration_sec
              : 0.0;
      res.per_node.push_back(row);
    }
  }
  res.dropped_records = dropped_;
  res.lossy = dropped_ > 0;
  return res;
}

}  // namespace ess::telemetry
