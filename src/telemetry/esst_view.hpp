// EsstView: the zero-copy read path for ESST captures.
//
// One construction maps the file (util::MmapFile), validates the header,
// and loads + CRC-checks the trailing chunk index — once. After that every
// chunk is a byte span into the mapping: no stream, no seek, no shared
// file position, no per-read copy of the payload. decode_chunk() is const
// and touches no mutable state, so any number of threads can decode
// disjoint (or even the same) chunks concurrently from one shared view —
// the property the parallel scan engine in analysis/parallel.cpp is built
// on. The old design paid a file open plus a full header/index re-parse
// per shard; a shared EsstView pays it exactly once per file.
//
// Division of labor with EsstReader (esst.cpp):
//   * EsstView — the fast path. Indexed, intact-trailer files only; when
//     the index is missing or fails its CRC, index_ok() is false and the
//     view holds no chunks. It never salvages.
//   * EsstReader — the streaming/salvage path. Forward-scans trailerless
//     or damaged files, works on arbitrary istreams, and stays the
//     fallback the analysis layer drops to when index_ok() is false.
// Both decode through telemetry/esst_codec.hpp, so the record bytes they
// produce are identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/esst.hpp"
#include "util/mmap_file.hpp"

namespace ess::telemetry {

class EsstView {
 public:
  /// Map `path` and parse header + trailer index. Throws std::runtime_error
  /// when the file cannot be opened or the header itself is unusable (too
  /// short, bad magic, unsupported version, header CRC mismatch) — the same
  /// contract as the EsstReader constructor. A missing/corrupt *index* is
  /// not fatal: index_ok() turns false and chunks() is empty, and the
  /// caller falls back to EsstReader's salvage scan.
  explicit EsstView(const std::string& path);

  EsstView(EsstView&&) = default;
  EsstView& operator=(EsstView&&) = default;
  EsstView(const EsstView&) = delete;
  EsstView& operator=(const EsstView&) = delete;

  const EsstMeta& meta() const { return meta_; }

  /// Trailing index present and CRC-clean. False means this view cannot
  /// serve the file (no salvage here) — use EsstReader.
  bool index_ok() const { return index_ok_; }

  const std::vector<ChunkInfo>& chunks() const { return chunks_; }
  SimTime duration() const { return duration_; }
  /// The trailer's record-count claim (see EsstReader::trailer_records).
  std::uint64_t trailer_records() const { return trailer_records_; }
  /// Sum of the per-chunk index counts.
  std::uint64_t total_records() const;
  /// Capture-time ring overflow recorded in the trailer.
  std::uint64_t capture_dropped() const { return capture_dropped_; }

  std::uint64_t file_size() const { return map_.size(); }
  /// True when backed by a real mapping (false: heap-buffer fallback).
  bool mapped() const { return map_.mapped(); }

  /// A chunk's payload bytes as a span into the mapping. Validates the
  /// framing (magic, in-bounds payload); throws "esst: chunk unreadable"
  /// when the bytes at the indexed offset are not a complete chunk.
  struct ChunkSpan {
    const std::uint8_t* payload = nullptr;
    std::size_t payload_len = 0;
    const std::uint8_t* footer = nullptr;  // kChunkFooterBytes long
  };
  ChunkSpan chunk_span(std::size_t idx) const;

  /// On-disk cost of chunk `idx` (framing + payload), the weight the
  /// byte-balanced sharding uses. Returns the minimum frame size when the
  /// framing at that offset is damaged — a chunk that cannot be decoded
  /// costs a shard almost nothing.
  std::uint64_t chunk_bytes(std::size_t idx) const;

  /// Decode chunk `idx` into `out` (cleared first, capacity reused).
  /// CRC-checks payload + footer, then decodes the footer's record count.
  /// Throws "esst: chunk unreadable" / "esst: chunk CRC mismatch" / decode
  /// errors — exactly the EsstReader::read_chunk_into contract. Const and
  /// thread-safe: all scratch is caller-owned.
  void decode_chunk(std::size_t idx, std::vector<trace::Record>& out) const;

  /// Kernel readahead hints, forwarded to the mapping (no-ops on the
  /// heap-buffer fallback).
  void advise_sequential() const { map_.advise_sequential(); }
  /// MADV_WILLNEED over the byte range of chunks [first, last).
  void advise_chunks(std::size_t first, std::size_t last) const;

 private:
  util::MmapFile map_;
  EsstMeta meta_;
  std::vector<ChunkInfo> chunks_;
  bool index_ok_ = false;
  SimTime duration_ = 0;
  std::uint64_t trailer_records_ = 0;
  std::uint64_t capture_dropped_ = 0;
};

}  // namespace ess::telemetry
