// Characterization diff: compare two traces' streamed summaries under
// tolerances.
//
// This is the seed of a trace-based regression gate: capture a golden ESST
// trace once, re-run the experiment in CI, and `esstrace diff golden.esst
// new.esst` fails the build when the I/O characterization drifts — the R/W
// mix moves by more than a couple of points, a request-size class appears
// or vanishes, the spatial distribution shifts bands, or the hot-sector set
// changes. Deterministic simulation makes the default tolerances tight.
#pragma once

#include <string>
#include <vector>

#include "telemetry/consumers.hpp"

namespace ess::telemetry {

struct DiffTolerance {
  /// Percentage metrics (R/W mix, per-size-class %, per-band %): absolute
  /// difference allowed, in percentage points.
  double pct_points = 2.0;
  /// Scalar metrics (record count, req/s, duration, max request size):
  /// relative difference allowed.
  double scalar_rel = 0.05;
  /// Hot-sector check: the top `topk` sets must share at least
  /// `topk_min_overlap` of their members.
  std::size_t topk = 5;
  double topk_min_overlap = 0.6;
};

struct DiffEntry {
  std::string metric;
  double a = 0;
  double b = 0;
  double delta = 0;  // |a - b|, in the metric's own unit
  double limit = 0;  // allowed delta
  bool ok = true;
};

struct DiffResult {
  std::vector<DiffEntry> entries;
  bool ok = true;          // every entry within tolerance
  std::size_t failed = 0;  // entries out of tolerance
  /// Provenance annotations (lossy captures, drop counts). Never affect
  /// `ok` — a lossy capture may still characterize within tolerance — but
  /// they are always printed, so a comparison against damaged data cannot
  /// pass silently.
  std::vector<std::string> notes;
};

DiffResult diff_summaries(const StreamSummary::Result& a,
                          const StreamSummary::Result& b,
                          const DiffTolerance& tol = {});

/// Human-readable table; failing rows are marked "!!".
std::string render_diff(const DiffResult& d);

}  // namespace ess::telemetry
