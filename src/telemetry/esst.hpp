// ESST: the indexed, chunked, delta-encoded on-disk trace format.
//
// The flat "ESSTRC01" format in trace/io.hpp stores 19 bytes per record and
// must be read front-to-back; a multi-hour capture is unseekable and a
// truncated file is unreadable. ESST fixes both, following the layout used
// by production trace systems (Recorder, TraceTracker):
//
//   [header: 128 bytes, fixed, little-endian]
//     magic "ESST0001", version, node id, disk geometry (total sectors,
//     sector size), sim parameters (seed, RAM), experiment name, CRC32.
//   [chunk]*
//     Each chunk holds up to records_per_chunk (default 64 Ki) records,
//     varint delta-encoded against the previous record *within the chunk*
//     (chunks decode independently, so a reader can skip any of them):
//       zigzag(ts delta), zigzag(sector delta), zigzag(size delta),
//       uvarint(outstanding << 1 | is_write)
//     Version 2 ("multi-node", written by `esstrace merge`) appends
//       zigzag(node delta)
//     per record, so a merged per-node stream keeps each record's origin.
//     Single-node captures stay version 1 — byte-identical to before.
//     Framing: u32 chunk magic, u32 payload bytes, payload, then a footer
//     (record count, first/last timestamp, min/max sector, payload CRC32).
//   [index]
//     One entry per chunk (offset + the footer's count/ranges) and a fixed
//     48-byte trailer (chunk count, index CRC32, capture duration, total
//     records, index offset, capture drop count, magic "ESSTIDX2"). The
//     drop count is the kernel ring's overflow tally at capture time, so a
//     downstream analysis knows the file itself is a lossy record of the
//     run. Files with the 40-byte "ESSTIDX1" trailer (no drop count) are
//     still read.
//
// Readers seek to the trailer and load the index; `filter`-style queries
// skip whole chunks whose [ts, sector] ranges cannot match. When the index
// is missing or bad (the writer died mid-run, the tail was truncated), the
// reader falls back to a forward scan and salvages every chunk whose CRC
// passes — a crash loses at most the unflushed chunk, never the file. All
// degraded-mode results carry a structured SalvageReport instead of being
// silently partial.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/sink.hpp"
#include "trace/trace_set.hpp"

namespace ess::exec {
class ThreadPool;  // optional chunk-encode offload target (exec/thread_pool.hpp)
}

namespace ess::telemetry {

/// CRC-32 (IEEE 802.3, the zlib polynomial). `seed` chains partial blocks:
/// crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

/// Fixed-header metadata. The geometry/sim fields let an analysis tool
/// interpret a trace without the config that produced it (band width checks,
/// disk-fraction coverage, reproducing the run).
struct EsstMeta {
  std::string experiment;
  std::int32_t node_id = 0;
  std::uint64_t total_sectors = 1'018'080;  // the 500 MB IDE disk
  std::uint32_t sector_bytes = 512;
  std::uint32_t records_per_chunk = 65'536;
  std::uint64_t seed = 0;
  std::uint64_t ram_bytes = 0;
  /// Multi-node record stream (format version 2): every record carries its
  /// originating node id. Set by `esstrace merge`; single-node captures
  /// leave it false and their bytes are unchanged from version 1.
  bool multi_node = false;
};

/// Per-chunk index entry (also the chunk footer's summary): enough to skip
/// the chunk without decoding it.
struct ChunkInfo {
  std::uint64_t offset = 0;  // file offset of the chunk's framing header
  std::uint32_t records = 0;
  SimTime ts_first = 0;
  SimTime ts_last = 0;
  std::uint32_t sector_min = 0;
  std::uint32_t sector_max = 0;
};

/// Streaming writer: append records as they are emitted; chunks flush when
/// full, the index and trailer are written by finish(). Safe to use as the
/// back-end of a long capture — memory held is one chunk's record batch
/// plus the index (plus two in-flight chunk buffers in offload mode).
///
/// Encoding is batched: records accumulate raw in a chunk-sized batch and
/// are varint-encoded + CRC'd in one pass when the chunk closes. With
/// set_encode_pool() that pass runs on a worker thread — the owning thread
/// keeps appending the next batch while up to two chunks encode in flight,
/// and completed chunks are written strictly in submission order, so the
/// output bytes are identical to the serial path at any worker count.
class EsstWriter {
 public:
  /// `error_context` (usually the output path) is woven into write-failure
  /// messages along with errno, so "disk full" on node 900 of a 1024-node
  /// merge names the file that hit it.
  EsstWriter(std::ostream& os, EsstMeta meta, std::string error_context = {});
  ~EsstWriter();

  EsstWriter(const EsstWriter&) = delete;
  EsstWriter& operator=(const EsstWriter&) = delete;

  void append(const trace::Record& r);
  /// Bulk append: one batch-buffer splice per chunk boundary instead of a
  /// per-record call — the merge fast path hands over whole runs.
  void append(const trace::Record* r, std::size_t n);

  /// Offload chunk encoding (varint deltas + CRC) to `pool`. Must be set
  /// before the first append — chunks already written serially cannot be
  /// retroactively ordered against in-flight ones. nullptr returns to
  /// inline encoding. The writer never blocks the pool on itself: workers
  /// only fill buffers, all stream writes stay on the owning thread.
  void set_encode_pool(exec::ThreadPool* pool);

  /// Capture-loss accounting: records that overflowed out of the kernel
  /// ring before reaching this writer. Persisted in the trailer so readers
  /// know the capture is lossy. Cumulative; call any time before finish().
  void set_dropped_records(std::uint64_t dropped) { dropped_ = dropped; }
  std::uint64_t dropped_records() const { return dropped_; }

  /// Flush the open chunk and write index + trailer. `duration` of 0 means
  /// "span of the records seen". Idempotent; called by the destructor if
  /// the caller did not.
  void finish(SimTime duration = 0);

  std::uint64_t records_written() const { return total_records_; }

 private:
  struct EncodeSlot;

  void close_chunk();                    // route batch_ to flush or submit
  void flush_chunk();                    // serial: encode + write inline
  void submit_chunk();                   // offload: hand batch_ to a worker
  void retire_slot(EncodeSlot& s);       // wait for a slot, write its chunk
  void abandon_slots() noexcept;         // wait only — teardown safety
  void write_chunk(ChunkInfo info, const std::uint8_t* payload,
                   std::size_t len, std::uint32_t crc);

  std::ostream& os_;
  EsstMeta meta_;
  std::string error_context_;
  exec::ThreadPool* pool_ = nullptr;
  std::vector<trace::Record> batch_;   // open chunk, raw records
  std::vector<std::uint8_t> payload_;  // serial-mode encode scratch
  std::vector<EncodeSlot> slots_;      // offload ring (submission order)
  std::size_t next_slot_ = 0;
  std::vector<ChunkInfo> index_;
  std::uint64_t offset_ = 0;  // bytes written so far
  std::uint64_t total_records_ = 0;
  std::uint64_t dropped_ = 0;
  SimTime max_ts_ = 0;
  bool finished_ = false;
};

/// A Sink that streams records into an ESST file — the trace-drain daemon's
/// on-disk back-end, and the capture side of `esstrace`.
///
/// Hardened against its own medium: when the underlying stream fails
/// mid-capture (disk full, media error under the trace file — see
/// fault::FailAfterStream), the sink latches the failure instead of
/// throwing into the drain path. The run continues untraced-to-disk; the
/// partial file remains salvageable up to the last complete chunk, and
/// failed()/error() report what happened.
class EsstFileSink final : public Sink {
 public:
  EsstFileSink(const std::string& path, EsstMeta meta);
  /// Write to a caller-owned stream (not closed by the sink). The fault
  /// harness uses this to put a failing stream under the writer.
  EsstFileSink(std::ostream& os, EsstMeta meta);
  ~EsstFileSink() override;

  void on_record(const trace::Record& r) override;
  /// Bulk path: one failure latch around the whole span instead of one
  /// try/catch per record (the drain daemon hands over 4096-record spans).
  void on_records(const trace::Record* r, std::size_t n) override;
  void on_finish(SimTime duration) override;
  void on_drops(std::uint64_t dropped) override;

  /// Forwarded to EsstWriter::set_encode_pool: chunk payloads encode on
  /// `pool` workers while this thread keeps draining records. Set before
  /// the first record; bytes written are identical either way.
  void set_encode_pool(exec::ThreadPool* pool);

  std::uint64_t records_written() const;

  /// True once a write failed; no further bytes are attempted.
  bool failed() const;
  /// The latched failure message (empty while healthy).
  const std::string& error() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Structured account of how much of a capture survived — populated by
/// EsstReader::verify() so degraded reads are reported, never silent.
struct SalvageReport {
  /// Trailer index present and CRC-clean (false => chunk list was rebuilt
  /// by a forward scan).
  bool index_ok = false;
  std::size_t chunks_kept = 0;
  std::size_t chunks_lost = 0;  // CRC-failed or undecodable chunk bodies
  std::uint64_t records_kept = 0;
  /// Records in lost chunks. Exact when the index survived (its per-chunk
  /// counts are authoritative); otherwise a lower bound reconstructed from
  /// untrusted footers and `records_lost_exact` is false.
  std::uint64_t records_lost = 0;
  bool records_lost_exact = true;
  /// File offset of the first damaged byte region (the first lost chunk,
  /// or where a salvage scan stopped early). Empty when nothing was
  /// damaged — an optional, not a 0 sentinel, so damage at offset 0 is
  /// representable and unambiguous.
  std::optional<std::uint64_t> first_bad_offset;
  /// Records that overflowed the kernel ring at capture time (from the
  /// trailer): loss upstream of the file itself.
  std::uint64_t capture_dropped = 0;

  /// Full-fidelity capture: indexed, nothing lost at capture or since.
  bool clean() const {
    return index_ok && chunks_lost == 0 && records_lost == 0 &&
           capture_dropped == 0;
  }
};

/// Reader: loads the header and the chunk index (or scan-salvages when the
/// index is missing/corrupt), then decodes chunks on demand.
class EsstReader {
 public:
  /// Parses the header and locates chunks. Throws std::runtime_error only
  /// when the header itself is unusable; damaged chunks and a damaged/
  /// missing index are recovered around, not fatal.
  explicit EsstReader(std::istream& is);

  const EsstMeta& meta() const { return meta_; }
  const std::vector<ChunkInfo>& chunks() const { return chunks_; }

  /// True when the trailing index was missing or bad and the chunk list was
  /// rebuilt by a forward scan.
  bool salvaged() const { return salvaged_; }
  /// Chunks dropped during the scan because their CRC failed.
  std::size_t corrupt_chunks() const { return corrupt_chunks_; }
  /// Capture-time ring overflow recorded in the trailer (0 for v1 trailers
  /// and salvaged files, where the count did not survive).
  std::uint64_t capture_dropped() const { return capture_dropped_; }

  /// Integrity pass: decode every chunk and account for what survived.
  /// Never throws for damaged chunks — damage becomes report fields.
  SalvageReport verify();

  SimTime duration() const { return duration_; }
  std::uint64_t total_records() const;
  /// The trailer's record-count claim (0 when the index did not survive).
  /// total_records() sums the per-chunk index counts instead; a shortfall
  /// between the two means the index itself lost entries.
  std::uint64_t trailer_records() const { return expected_records_; }

  /// Decode chunk `idx`. Throws on CRC mismatch (read_all()/read_filtered()
  /// catch and skip instead).
  std::vector<trace::Record> read_chunk(std::size_t idx);

  /// Decode chunk `idx` into `out` (cleared first), reusing `out`'s capacity
  /// and the reader's internal payload scratch — the allocation-free loop
  /// for whole-file passes (stats, cat, verify over multi-GB captures).
  /// Same error behavior as read_chunk.
  void read_chunk_into(std::size_t idx, std::vector<trace::Record>& out);

  trace::TraceSet read_all();

  struct Filter {
    SimTime ts_min = 0;
    SimTime ts_max = std::numeric_limits<SimTime>::max();
    std::uint64_t sector_min = 0;
    std::uint64_t sector_max = std::numeric_limits<std::uint64_t>::max();
    int rw = -1;  // -1 = both, 0 = reads only, 1 = writes only

    bool chunk_may_match(const ChunkInfo& c) const;
    bool record_matches(const trace::Record& r) const;
  };

  /// Decode only chunks whose index ranges can intersect the filter; the
  /// point of the format. `chunks_skipped` (optional) reports how many
  /// chunks the index pruned without decoding.
  trace::TraceSet read_filtered(const Filter& f,
                                std::size_t* chunks_skipped = nullptr);

 private:
  void salvage_scan(std::uint64_t size);

  std::istream& is_;
  EsstMeta meta_;
  std::vector<ChunkInfo> chunks_;
  std::vector<std::uint8_t> payload_scratch_;  // reused across chunk reads
  std::uint64_t file_size_ = 0;  // measured once; seeking to EOF per chunk
                                 // defeated stream buffering (see ctor)
  SimTime duration_ = 0;
  bool salvaged_ = false;
  std::size_t corrupt_chunks_ = 0;
  std::uint64_t capture_dropped_ = 0;
  std::uint64_t expected_records_ = 0;   // trailer claim (index_ok only)
  // Scan-time damage accounting, folded into verify()'s report.
  std::size_t scan_lost_chunks_ = 0;
  std::uint64_t scan_lost_records_ = 0;  // from untrusted footers, clamped
  std::uint64_t scan_first_bad_ = 0;
};

// Whole-file conveniences. write_esst_file fills meta.experiment/node_id
// from the TraceSet when left at defaults.
void write_esst(const trace::TraceSet& ts, std::ostream& os,
                EsstMeta meta = {});
void write_esst_file(const trace::TraceSet& ts, const std::string& path,
                     EsstMeta meta = {});
trace::TraceSet read_esst(std::istream& is);
trace::TraceSet read_esst_file(const std::string& path);

/// True when the stream starts with the ESST magic (position restored).
bool is_esst(std::istream& is);

}  // namespace ess::telemetry
