#include "telemetry/esst_view.hpp"

#include <algorithm>
#include <stdexcept>

#include "telemetry/esst_codec.hpp"

namespace ess::telemetry {

using namespace codec;

EsstView::EsstView(const std::string& path) : map_(path) {
  const std::uint64_t size = map_.size();
  if (size < kHeaderBytes) throw std::runtime_error("esst: file too short");
  meta_ = parse_header(map_.data());  // throws when the header is unusable

  // Trailer + index, validated exactly as EsstReader does; any failure
  // leaves index_ok_ false instead of salvaging.
  const std::size_t tail_len = static_cast<std::size_t>(
      std::min<std::uint64_t>(size - kHeaderBytes, kTrailer2Bytes));
  TrailerInfo trailer;
  const std::size_t trailer_bytes =
      parse_trailer(map_.data() + (size - tail_len), tail_len, trailer);
  if (trailer_bytes == 0) return;
  capture_dropped_ = trailer.capture_dropped;
  const std::uint64_t index_bytes =
      std::uint64_t{trailer.chunk_count} * kIndexEntryBytes;
  if (trailer.index_offset < kHeaderBytes ||
      trailer.index_offset + index_bytes + trailer_bytes != size) {
    return;
  }
  const std::uint8_t* entries = map_.data() + trailer.index_offset;
  if (crc32(entries, static_cast<std::size_t>(index_bytes)) !=
      trailer.index_crc) {
    return;
  }
  parse_index_entries(entries, trailer.chunk_count, chunks_);
  duration_ = trailer.duration;
  trailer_records_ = trailer.total_records;
  index_ok_ = true;
}

std::uint64_t EsstView::total_records() const {
  std::uint64_t n = 0;
  for (const auto& c : chunks_) n += c.records;
  return n;
}

EsstView::ChunkSpan EsstView::chunk_span(std::size_t idx) const {
  const ChunkInfo& c = chunks_.at(idx);
  const std::uint64_t size = map_.size();
  if (c.offset + kChunkHeaderBytes + kChunkFooterBytes > size ||
      get_u32(map_.data() + c.offset) != kChunkMagic) {
    throw std::runtime_error("esst: chunk unreadable");
  }
  const std::uint32_t payload_bytes = get_u32(map_.data() + c.offset + 4);
  if (c.offset + kChunkHeaderBytes + payload_bytes + kChunkFooterBytes >
      size) {
    throw std::runtime_error("esst: chunk unreadable");
  }
  ChunkSpan s;
  s.payload = map_.data() + c.offset + kChunkHeaderBytes;
  s.payload_len = payload_bytes;
  s.footer = s.payload + payload_bytes;
  return s;
}

std::uint64_t EsstView::chunk_bytes(std::size_t idx) const {
  const ChunkInfo& c = chunks_.at(idx);
  const std::uint64_t size = map_.size();
  if (c.offset + kChunkHeaderBytes + kChunkFooterBytes <= size &&
      get_u32(map_.data() + c.offset) == kChunkMagic) {
    const std::uint32_t payload_bytes = get_u32(map_.data() + c.offset + 4);
    if (c.offset + kChunkHeaderBytes + payload_bytes + kChunkFooterBytes <=
        size) {
      return kChunkHeaderBytes + payload_bytes + kChunkFooterBytes;
    }
  }
  return kChunkHeaderBytes + kChunkFooterBytes;
}

void EsstView::decode_chunk(std::size_t idx,
                            std::vector<trace::Record>& out) const {
  const ChunkSpan s = chunk_span(idx);
  ChunkInfo info;
  const std::uint32_t want = parse_chunk_footer(s.footer, info);
  if (chunk_crc(s.payload, s.payload_len, s.footer) != want) {
    throw std::runtime_error("esst: chunk CRC mismatch");
  }
  decode_payload_into(s.payload, s.payload_len, info.records,
                      meta_.multi_node, out);
}

void EsstView::advise_chunks(std::size_t first, std::size_t last) const {
  if (first >= last || first >= chunks_.size()) return;
  last = std::min(last, chunks_.size());
  const std::uint64_t lo = chunks_[first].offset;
  const std::uint64_t hi =
      chunks_[last - 1].offset + chunk_bytes(last - 1);
  if (hi > lo) {
    map_.advise_willneed(static_cast<std::size_t>(lo),
                         static_cast<std::size_t>(hi - lo));
  }
}

}  // namespace ess::telemetry
