#include "telemetry/esst.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <future>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "exec/thread_pool.hpp"
#include "telemetry/esst_codec.hpp"

namespace ess::telemetry {

// The wire format itself — constants, scalar packing, varint/record codec,
// header/trailer/index parsing — lives in esst_codec.hpp, shared with the
// zero-copy EsstView so the two read paths cannot drift.
using namespace codec;

namespace {

/// Write or throw, carrying where and why: `ctx` is the writer's error
/// context (the output path, when known) and errno names the OS-level
/// cause — "esst: write failed (cluster.esst): No space left on device"
/// instead of a bare "write failed" from the middle of a 1024-node merge.
[[noreturn]] void throw_write_failed(const std::string& ctx, int err) {
  std::string msg = "esst: write failed";
  if (!ctx.empty()) msg += " (" + ctx + ")";
  if (err != 0) {
    msg += ": ";
    msg += std::strerror(err);
  }
  throw std::runtime_error(msg);
}

void write_bytes(std::ostream& os, const void* p, std::size_t n,
                 const std::string& ctx) {
  errno = 0;  // a stale value must not masquerade as this write's cause
  os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!os) throw_write_failed(ctx, errno);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  // Slicing-by-8: eight derived tables let the loop fold eight input bytes
  // per iteration — one table load per byte still, but 1/8th the loop
  // carried dependency length of the classic bytewise form, which is the
  // difference between ~400 MB/s and multi-GB/s on the verify path. Same
  // polynomial (IEEE 802.3 / zlib, reflected 0xedb88320), same pre/post
  // conditioning, bit-identical results for every input and seed.
  static const auto tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::size_t s = 1; s < 8; ++s) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        const std::uint32_t c = t[s - 1][i];
        t[s][i] = t[0][c & 0xff] ^ (c >> 8);
      }
    }
    return t;
  }();
  const auto& t = tables;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  // Word loads composed byte-by-byte (get_u32) stay endian-correct and
  // alignment-safe; compilers collapse them to single loads on LE targets.
  while (len >= 8) {
    const std::uint32_t lo = c ^ get_u32(p);
    const std::uint32_t hi = get_u32(p + 4);
    c = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
        t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
        t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (std::size_t i = 0; i < len; ++i) {
    c = t[0][(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------- writer

namespace {

/// The chunk CRC as it goes on the wire: payload first, then the 24-byte
/// footer summary chained on, so a corrupted count or range is also
/// detected. Computed where the payload is encoded — on a worker in
/// offload mode — since it is by far the most expensive part of framing.
std::uint32_t chunk_wire_crc(const ChunkInfo& info,
                             const std::uint8_t* payload, std::size_t len) {
  std::uint8_t ftr[kChunkFooterBytes];
  put_chunk_footer_summary(ftr, info);
  return crc32(ftr, kChunkFooterBytes - 4, crc32(payload, len));
}

}  // namespace

/// One in-flight encode job: a chunk's raw records, its encoded payload,
/// and the summary + CRC the worker computed. Buffers live for the whole
/// merge and swap with the writer's batch, so steady state allocates
/// nothing.
struct EsstWriter::EncodeSlot {
  std::vector<trace::Record> recs;
  std::vector<std::uint8_t> payload;
  std::size_t payload_len = 0;
  ChunkInfo info;
  std::uint32_t crc = 0;
  SimTime max_ts = 0;
  std::future<void> done;
  bool pending = false;
};

EsstWriter::EsstWriter(std::ostream& os, EsstMeta meta,
                       std::string error_context)
    : os_(os), meta_(std::move(meta)),
      error_context_(std::move(error_context)) {
  if (meta_.records_per_chunk == 0) meta_.records_per_chunk = 1;
  batch_.reserve(meta_.records_per_chunk);
  std::uint8_t h[kHeaderBytes] = {};
  std::memcpy(h, kMagic, sizeof kMagic);
  put_u16(h + 8, meta_.multi_node ? kVersionMulti : kVersion);
  put_u16(h + 10, static_cast<std::uint16_t>(kHeaderBytes));
  put_u32(h + 12, static_cast<std::uint32_t>(meta_.node_id));
  put_u64(h + 16, meta_.total_sectors);
  put_u32(h + 24, meta_.sector_bytes);
  put_u32(h + 28, meta_.records_per_chunk);
  put_u64(h + 32, meta_.seed);
  put_u64(h + 40, meta_.ram_bytes);
  const auto name_len =
      std::min<std::size_t>(meta_.experiment.size(), kNameBytes);
  put_u32(h + 48, static_cast<std::uint32_t>(name_len));
  std::memcpy(h + 52, meta_.experiment.data(), name_len);
  put_u32(h + kHeaderBytes - 4, crc32(h, kHeaderBytes - 4));
  write_bytes(os_, h, kHeaderBytes, error_context_);
  offset_ = kHeaderBytes;
}

EsstWriter::~EsstWriter() {
  try {
    finish();
  } catch (...) {
    // A destructor cannot usefully report a write failure; finish() directly
    // to observe errors.
  }
  // If finish() threw mid-drain, in-flight encode jobs still reference the
  // slot buffers about to be destroyed — wait them out (without writing).
  abandon_slots();
}

void EsstWriter::set_encode_pool(exec::ThreadPool* pool) {
  if (total_records_ != 0 || !index_.empty()) {
    throw std::logic_error("esst: set_encode_pool after first append");
  }
  pool_ = pool;
  if (pool_ != nullptr && slots_.empty()) {
    // Two slots: one encoding while the previous one drains to the stream —
    // deeper pipelines only add memory, the stream write is the sync point.
    slots_.resize(2);
  }
}

void EsstWriter::append(const trace::Record& r) {
  if (finished_) throw std::logic_error("esst: append after finish");
  batch_.push_back(r);
  ++total_records_;
  if (batch_.size() >= meta_.records_per_chunk) close_chunk();
}

void EsstWriter::append(const trace::Record* r, std::size_t n) {
  if (finished_) throw std::logic_error("esst: append after finish");
  while (n > 0) {
    const std::size_t take =
        std::min<std::size_t>(n, meta_.records_per_chunk - batch_.size());
    batch_.insert(batch_.end(), r, r + take);
    total_records_ += take;
    r += take;
    n -= take;
    if (batch_.size() >= meta_.records_per_chunk) close_chunk();
  }
}

void EsstWriter::close_chunk() {
  if (batch_.empty()) return;
  if (pool_ != nullptr) {
    submit_chunk();
  } else {
    flush_chunk();
  }
}

void EsstWriter::flush_chunk() {
  ChunkInfo info;
  const auto enc = encode_payload_into(batch_.data(), batch_.size(),
                                       meta_.multi_node, payload_, info);
  max_ts_ = std::max(max_ts_, enc.max_ts);
  write_chunk(info, payload_.data(), enc.payload_len,
              chunk_wire_crc(info, payload_.data(), enc.payload_len));
  batch_.clear();
}

void EsstWriter::submit_chunk() {
  auto& s = slots_[next_slot_];
  next_slot_ = (next_slot_ + 1) % slots_.size();
  // The ring is the ordering mechanism: a slot is written (and only then
  // reused) in the order chunks were submitted, so offloaded output is
  // byte-identical to the serial path.
  retire_slot(s);
  s.recs.swap(batch_);
  batch_.clear();
  const bool multi = meta_.multi_node;
  auto task = std::make_shared<std::packaged_task<void()>>([&s, multi] {
    const auto enc =
        encode_payload_into(s.recs.data(), s.recs.size(), multi, s.payload,
                            s.info);
    s.payload_len = enc.payload_len;
    s.max_ts = enc.max_ts;
    s.crc = chunk_wire_crc(s.info, s.payload.data(), enc.payload_len);
  });
  s.done = task->get_future();
  s.pending = true;
  pool_->submit([task] { (*task)(); });
}

void EsstWriter::retire_slot(EncodeSlot& s) {
  if (!s.pending) return;
  s.done.get();
  s.pending = false;
  max_ts_ = std::max(max_ts_, s.max_ts);
  write_chunk(s.info, s.payload.data(), s.payload_len, s.crc);
  s.recs.clear();
}

void EsstWriter::abandon_slots() noexcept {
  for (auto& s : slots_) {
    if (s.pending) {
      try {
        s.done.wait();
      } catch (...) {
      }
      s.pending = false;
    }
  }
}

void EsstWriter::write_chunk(ChunkInfo info, const std::uint8_t* payload,
                             std::size_t len, std::uint32_t crc) {
  info.offset = offset_;
  std::uint8_t hdr[kChunkHeaderBytes];
  put_u32(hdr, kChunkMagic);
  put_u32(hdr + 4, static_cast<std::uint32_t>(len));
  write_bytes(os_, hdr, sizeof hdr, error_context_);
  write_bytes(os_, payload, len, error_context_);

  std::uint8_t ftr[kChunkFooterBytes];
  put_chunk_footer_summary(ftr, info);
  put_u32(ftr + kChunkFooterBytes - 4, crc);
  write_bytes(os_, ftr, sizeof ftr, error_context_);

  offset_ += kChunkHeaderBytes + len + kChunkFooterBytes;
  index_.push_back(info);
}

void EsstWriter::finish(SimTime duration) {
  if (finished_) return;
  close_chunk();
  // Drain the offload ring in submission order (oldest slot first).
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    retire_slot(slots_[(next_slot_ + i) % slots_.size()]);
  }
  const std::uint64_t index_offset = offset_;
  std::vector<std::uint8_t> entries;
  entries.reserve(index_.size() * kIndexEntryBytes);
  for (const auto& c : index_) {
    std::uint8_t e[kIndexEntryBytes];
    put_u64(e, c.offset);
    put_u32(e + 8, c.records);
    put_u64(e + 12, c.ts_first);
    put_u64(e + 20, c.ts_last);
    put_u32(e + 28, c.sector_min);
    put_u32(e + 32, c.sector_max);
    entries.insert(entries.end(), e, e + sizeof e);
  }
  write_bytes(os_, entries.data(), entries.size(), error_context_);

  std::uint8_t t[kTrailer2Bytes];
  put_u32(t, static_cast<std::uint32_t>(index_.size()));
  put_u32(t + 4, crc32(entries.data(), entries.size()));
  put_u64(t + 8, duration > 0 ? duration : max_ts_);
  put_u64(t + 16, total_records_);
  put_u64(t + 24, index_offset);
  put_u64(t + 32, dropped_);
  std::memcpy(t + 40, kIndexMagic2, sizeof kIndexMagic2);
  write_bytes(os_, t, sizeof t, error_context_);
  errno = 0;
  os_.flush();
  // The final flush is the last chance to see a buffered failure; report
  // it with the same context a mid-stream write would carry.
  if (!os_) throw_write_failed(error_context_, errno);
  finished_ = true;
}

// ---------------------------------------------------------------- file sink

struct EsstFileSink::Impl {
  // Owned-file mode: a wide stream buffer (vs. the 8 KB libstdc++ default)
  // so a long capture syscalls once per ~quarter-MB of trace, not once per
  // chunk flush. Must be installed before open() to take effect.
  static constexpr std::size_t kFileBufBytes = 256 * 1024;
  std::vector<char> iobuf;
  std::ofstream file;         // owned stream (path constructor)
  std::ostream* os = nullptr; // the stream the writer targets
  std::unique_ptr<EsstWriter> writer;
  std::uint64_t records = 0;  // count survives a writer teardown on failure
  bool failed = false;
  std::string error;

  // Latch a failure: record the message, drop the writer (no more bytes are
  // attempted), and keep the sink alive so the drain path never sees the
  // exception. The partial file stays salvageable up to its last complete
  // chunk.
  void latch(const char* where, const std::exception& e) {
    failed = true;
    error = std::string(where) + ": " + e.what();
    writer.reset();
  }
};

EsstFileSink::EsstFileSink(const std::string& path, EsstMeta meta)
    : impl_(std::make_unique<Impl>()) {
  impl_->iobuf.resize(Impl::kFileBufBytes);
  impl_->file.rdbuf()->pubsetbuf(impl_->iobuf.data(),
                                 static_cast<std::streamsize>(
                                     impl_->iobuf.size()));
  impl_->file.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->file) throw std::runtime_error("esst: cannot open " + path);
  impl_->os = &impl_->file;
  // The writer knows the path it is writing, so a failure mid-capture names
  // the file (plus errno) instead of a bare "write failed".
  impl_->writer =
      std::make_unique<EsstWriter>(*impl_->os, std::move(meta), path);
}

EsstFileSink::EsstFileSink(std::ostream& os, EsstMeta meta)
    : impl_(std::make_unique<Impl>()) {
  impl_->os = &os;
  impl_->writer = std::make_unique<EsstWriter>(*impl_->os, std::move(meta));
}

EsstFileSink::~EsstFileSink() = default;

void EsstFileSink::on_record(const trace::Record& r) {
  if (!impl_->writer) return;
  try {
    impl_->writer->append(r);
    impl_->records = impl_->writer->records_written();
  } catch (const std::exception& e) {
    impl_->latch("esst sink: append", e);
  }
}

void EsstFileSink::on_records(const trace::Record* r, std::size_t n) {
  if (!impl_->writer) return;
  try {
    impl_->writer->append(r, n);
    impl_->records = impl_->writer->records_written();
  } catch (const std::exception& e) {
    impl_->records = impl_->writer->records_written();
    impl_->latch("esst sink: append", e);
  }
}

void EsstFileSink::on_finish(SimTime duration) {
  if (!impl_->writer) return;
  try {
    impl_->writer->finish(duration);
  } catch (const std::exception& e) {
    impl_->latch("esst sink: finish", e);
  }
}

void EsstFileSink::on_drops(std::uint64_t dropped) {
  if (impl_->writer) impl_->writer->set_dropped_records(dropped);
}

void EsstFileSink::set_encode_pool(exec::ThreadPool* pool) {
  if (impl_->writer) impl_->writer->set_encode_pool(pool);
}

std::uint64_t EsstFileSink::records_written() const {
  return impl_->writer ? impl_->writer->records_written() : impl_->records;
}

bool EsstFileSink::failed() const { return impl_->failed; }

const std::string& EsstFileSink::error() const { return impl_->error; }

// ---------------------------------------------------------------- reader

namespace {

/// Reads the chunk at the current stream position. Returns false (leaving
/// `info`/`payload` unspecified) when the bytes there are not a structurally
/// complete chunk. `crc_ok` reports payload+footer integrity.
bool read_chunk_at(std::istream& is, std::uint64_t offset,
                   std::uint64_t file_size, ChunkInfo& info,
                   std::vector<std::uint8_t>& payload, bool& crc_ok) {
  if (offset + kChunkHeaderBytes + kChunkFooterBytes > file_size) return false;
  is.clear();
  is.seekg(static_cast<std::streamoff>(offset));
  std::uint8_t hdr[kChunkHeaderBytes];
  is.read(reinterpret_cast<char*>(hdr), sizeof hdr);
  if (!is || get_u32(hdr) != kChunkMagic) return false;
  const std::uint32_t payload_bytes = get_u32(hdr + 4);
  if (offset + kChunkHeaderBytes + payload_bytes + kChunkFooterBytes >
      file_size) {
    return false;
  }
  payload.resize(payload_bytes);
  is.read(reinterpret_cast<char*>(payload.data()), payload_bytes);
  std::uint8_t ftr[kChunkFooterBytes];
  is.read(reinterpret_cast<char*>(ftr), sizeof ftr);
  if (!is) return false;
  info.offset = offset;
  const std::uint32_t want = parse_chunk_footer(ftr, info);
  crc_ok = chunk_crc(payload.data(), payload.size(), ftr) == want;
  return true;
}

std::uint64_t stream_size(std::istream& is) {
  is.clear();
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  return end < 0 ? 0 : static_cast<std::uint64_t>(end);
}

}  // namespace

EsstReader::EsstReader(std::istream& is) : is_(is) {
  // Measure the file once; every later bounds check reuses file_size_. A
  // stream_size() per chunk read seeks to EOF and back, which discards the
  // stream's read buffer and turns a forward pass into a seek storm.
  const std::uint64_t size = stream_size(is_);
  file_size_ = size;
  if (size < kHeaderBytes) throw std::runtime_error("esst: file too short");
  is_.seekg(0);
  std::uint8_t h[kHeaderBytes];
  is_.read(reinterpret_cast<char*>(h), sizeof h);
  if (!is_) throw std::runtime_error("esst: bad magic");
  meta_ = parse_header(h);  // throws when the header is unusable

  // Fast path: the trailing index. The trailer comes in two sizes —
  // "ESSTIDX2" (48 bytes, carries the capture drop count) and the legacy
  // "ESSTIDX1" (40 bytes) — distinguished by the magic at the very end.
  std::size_t trailer_bytes = 0;
  TrailerInfo trailer;
  const std::size_t tail_len =
      static_cast<std::size_t>(std::min<std::uint64_t>(
          size - kHeaderBytes, kTrailer2Bytes));
  if (tail_len >= kTrailer1Bytes) {
    std::uint8_t t[kTrailer2Bytes] = {};
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(size - tail_len));
    is_.read(reinterpret_cast<char*>(t), static_cast<std::streamsize>(tail_len));
    if (is_) trailer_bytes = parse_trailer(t, tail_len, trailer);
  }
  if (trailer_bytes != 0) {
    capture_dropped_ = trailer.capture_dropped;
    const std::uint64_t index_bytes =
        std::uint64_t{trailer.chunk_count} * kIndexEntryBytes;
    if (trailer.index_offset >= kHeaderBytes &&
        trailer.index_offset + index_bytes + trailer_bytes == size) {
      std::vector<std::uint8_t> entries(index_bytes);
      is_.clear();
      is_.seekg(static_cast<std::streamoff>(trailer.index_offset));
      is_.read(reinterpret_cast<char*>(entries.data()),
               static_cast<std::streamsize>(entries.size()));
      if (is_ && crc32(entries.data(), entries.size()) == trailer.index_crc) {
        parse_index_entries(entries.data(), trailer.chunk_count, chunks_);
        duration_ = trailer.duration;
        expected_records_ = trailer.total_records;
        return;
      }
    }
  }

  // Salvage path: forward scan, keep every chunk whose CRC passes. A
  // trailerless file carries no capture drop count; don't trust one parsed
  // from a trailer that failed validation above.
  salvage_scan(size);
}

/// Rebuild the chunk list by one buffered forward pass. A single seek to
/// the first chunk, then strictly sequential reads: frame header, payload,
/// footer, repeat — no per-chunk re-seek, so salvaging a corrupt multi-GB
/// capture streams at disk speed instead of degrading with chunk count.
void EsstReader::salvage_scan(std::uint64_t size) {
  salvaged_ = true;
  capture_dropped_ = 0;
  std::uint64_t off = kHeaderBytes;
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(off));
  while (off + kChunkHeaderBytes + kChunkFooterBytes <= size) {
    std::uint8_t hdr[kChunkHeaderBytes];
    is_.read(reinterpret_cast<char*>(hdr), sizeof hdr);
    if (!is_ || get_u32(hdr) != kChunkMagic) {
      // The trace ends here: index/trailer bytes, EOF, or torn framing.
      break;
    }
    const std::uint32_t payload_bytes = get_u32(hdr + 4);
    if (off + kChunkHeaderBytes + payload_bytes + kChunkFooterBytes > size) {
      // Chunk framing is intact but the body runs past EOF: a truncated
      // tail. Everything from `off` on is unaccounted for.
      ++scan_lost_chunks_;
      if (scan_first_bad_ == 0) scan_first_bad_ = off;
      break;
    }
    payload_scratch_.resize(payload_bytes);
    is_.read(reinterpret_cast<char*>(payload_scratch_.data()), payload_bytes);
    std::uint8_t ftr[kChunkFooterBytes];
    is_.read(reinterpret_cast<char*>(ftr), sizeof ftr);
    if (!is_) break;
    ChunkInfo info;
    info.offset = off;
    const std::uint32_t want = parse_chunk_footer(ftr, info);
    const bool crc_ok =
        chunk_crc(payload_scratch_.data(), payload_scratch_.size(), ftr) ==
        want;
    if (crc_ok) {
      chunks_.push_back(info);
      duration_ = std::max(duration_, info.ts_last);
    } else {
      ++corrupt_chunks_;
      ++scan_lost_chunks_;
      // The footer is untrusted (its CRC just failed); clamp its record
      // claim so a garbage count cannot dominate the report.
      scan_lost_records_ += std::min<std::uint64_t>(
          info.records,
          meta_.records_per_chunk > 0 ? meta_.records_per_chunk : info.records);
      if (scan_first_bad_ == 0) scan_first_bad_ = off;
    }
    off += kChunkHeaderBytes + payload_bytes + kChunkFooterBytes;
  }
  // A tail too short for a whole frame can still start with chunk magic —
  // that is a torn chunk, not trailer bytes, and it counts as lost.
  if (scan_first_bad_ == 0 && off + kChunkHeaderBytes <= size &&
      off + kChunkHeaderBytes + kChunkFooterBytes > size) {
    std::uint8_t hdr[kChunkHeaderBytes];
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(off));
    is_.read(reinterpret_cast<char*>(hdr), sizeof hdr);
    if (is_ && get_u32(hdr) == kChunkMagic) {
      ++scan_lost_chunks_;
      scan_first_bad_ = off;
    }
  }
}

std::uint64_t EsstReader::total_records() const {
  std::uint64_t n = 0;
  for (const auto& c : chunks_) n += c.records;
  return n;
}

SalvageReport EsstReader::verify() {
  SalvageReport rep;
  rep.index_ok = !salvaged_;
  rep.capture_dropped = capture_dropped_;
  std::vector<trace::Record> recs;
  for (const auto& c : chunks_) {
    ChunkInfo info;
    bool crc_ok = false;
    bool decoded = false;
    if (read_chunk_at(is_, c.offset, file_size_, info, payload_scratch_,
                      crc_ok) &&
        crc_ok) {
      try {
        decode_payload_into(payload_scratch_.data(), payload_scratch_.size(),
                            info.records, meta_.multi_node, recs);
        decoded = true;
      } catch (const std::runtime_error&) {
        // CRC passed but the payload does not decode — counts as lost.
      }
    }
    if (decoded) {
      ++rep.chunks_kept;
      rep.records_kept += info.records;
    } else {
      ++rep.chunks_lost;
      rep.records_lost += c.records;
      if (!rep.first_bad_offset) rep.first_bad_offset = c.offset;
    }
  }
  // Fold in damage the constructor's salvage scan already discarded (those
  // chunks never made it into chunks_).
  rep.chunks_lost += scan_lost_chunks_;
  rep.records_lost += scan_lost_records_;
  if (scan_first_bad_ != 0 &&
      (!rep.first_bad_offset || scan_first_bad_ < *rep.first_bad_offset)) {
    rep.first_bad_offset = scan_first_bad_;
  }
  if (salvaged_) {
    // No trusted index: lost-record figures come from untrusted footers (a
    // clamped lower bound), and a truncated tail may hide more.
    rep.records_lost_exact = false;
  } else if (expected_records_ > rep.records_kept + rep.records_lost) {
    // The trailer's total outruns the index's per-chunk sum; trust the
    // larger claim so the report never understates loss.
    rep.records_lost = expected_records_ - rep.records_kept;
  }
  return rep;
}

void EsstReader::read_chunk_into(std::size_t idx,
                                 std::vector<trace::Record>& out) {
  const ChunkInfo& c = chunks_.at(idx);
  ChunkInfo read_info;
  bool crc_ok = false;
  if (!read_chunk_at(is_, c.offset, file_size_, read_info, payload_scratch_,
                     crc_ok)) {
    throw std::runtime_error("esst: chunk unreadable");
  }
  if (!crc_ok) throw std::runtime_error("esst: chunk CRC mismatch");
  decode_payload_into(payload_scratch_.data(), payload_scratch_.size(),
                      read_info.records, meta_.multi_node, out);
}

std::vector<trace::Record> EsstReader::read_chunk(std::size_t idx) {
  std::vector<trace::Record> out;
  read_chunk_into(idx, out);
  return out;
}

trace::TraceSet EsstReader::read_all() {
  trace::TraceSet ts(meta_.experiment, meta_.node_id);
  std::vector<trace::Record> recs;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    try {
      read_chunk_into(i, recs);
      ts.add_all(recs);
    } catch (const std::runtime_error&) {
      ++corrupt_chunks_;  // indexed file with a damaged chunk body
    }
  }
  ts.set_duration(duration_);
  return ts;
}

bool EsstReader::Filter::chunk_may_match(const ChunkInfo& c) const {
  return c.ts_last >= ts_min && c.ts_first <= ts_max &&
         std::uint64_t{c.sector_max} >= sector_min &&
         std::uint64_t{c.sector_min} <= sector_max;
}

bool EsstReader::Filter::record_matches(const trace::Record& r) const {
  if (r.timestamp < ts_min || r.timestamp > ts_max) return false;
  if (r.sector < sector_min || r.sector > sector_max) return false;
  if (rw >= 0 && (r.is_write != 0) != (rw != 0)) return false;
  return true;
}

trace::TraceSet EsstReader::read_filtered(const Filter& f,
                                          std::size_t* chunks_skipped) {
  trace::TraceSet ts(meta_.experiment, meta_.node_id);
  std::vector<trace::Record> recs;
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (!f.chunk_may_match(chunks_[i])) {
      ++skipped;
      continue;
    }
    try {
      read_chunk_into(i, recs);
    } catch (const std::runtime_error&) {
      ++corrupt_chunks_;
      continue;
    }
    for (const auto& r : recs) {
      if (f.record_matches(r)) ts.add(r);
    }
  }
  ts.set_duration(duration_);
  if (chunks_skipped != nullptr) *chunks_skipped = skipped;
  return ts;
}

// ---------------------------------------------------------------- wrappers

void write_esst(const trace::TraceSet& ts, std::ostream& os, EsstMeta meta) {
  if (meta.experiment.empty()) meta.experiment = ts.experiment();
  if (meta.node_id == 0) meta.node_id = ts.node_id();
  EsstWriter w(os, std::move(meta));
  w.append(ts.records().data(), ts.records().size());
  w.finish(ts.duration());
}

void write_esst_file(const trace::TraceSet& ts, const std::string& path,
                     EsstMeta meta) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("esst: cannot open " + path);
  write_esst(ts, f, std::move(meta));
}

trace::TraceSet read_esst(std::istream& is) {
  EsstReader r(is);
  return r.read_all();
}

trace::TraceSet read_esst_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("esst: cannot open " + path);
  return read_esst(f);
}

bool is_esst(std::istream& is) {
  const auto pos = is.tellg();
  char m[8] = {};
  is.read(m, sizeof m);
  const bool ok =
      is.gcount() == sizeof m && std::memcmp(m, kMagic, sizeof m) == 0;
  is.clear();
  is.seekg(pos);
  return ok;
}

}  // namespace ess::telemetry
