#include "telemetry/esst.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "telemetry/esst_codec.hpp"

namespace ess::telemetry {

// The wire format itself — constants, scalar packing, varint/record codec,
// header/trailer/index parsing — lives in esst_codec.hpp, shared with the
// zero-copy EsstView so the two read paths cannot drift.
using namespace codec;

namespace {

void write_bytes(std::ostream& os, const void* p, std::size_t n) {
  os.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!os) throw std::runtime_error("esst: write failed");
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// ---------------------------------------------------------------- writer

EsstWriter::EsstWriter(std::ostream& os, EsstMeta meta)
    : os_(os), meta_(std::move(meta)) {
  if (meta_.records_per_chunk == 0) meta_.records_per_chunk = 1;
  std::uint8_t h[kHeaderBytes] = {};
  std::memcpy(h, kMagic, sizeof kMagic);
  put_u16(h + 8, meta_.multi_node ? kVersionMulti : kVersion);
  put_u16(h + 10, static_cast<std::uint16_t>(kHeaderBytes));
  put_u32(h + 12, static_cast<std::uint32_t>(meta_.node_id));
  put_u64(h + 16, meta_.total_sectors);
  put_u32(h + 24, meta_.sector_bytes);
  put_u32(h + 28, meta_.records_per_chunk);
  put_u64(h + 32, meta_.seed);
  put_u64(h + 40, meta_.ram_bytes);
  const auto name_len =
      std::min<std::size_t>(meta_.experiment.size(), kNameBytes);
  put_u32(h + 48, static_cast<std::uint32_t>(name_len));
  std::memcpy(h + 52, meta_.experiment.data(), name_len);
  put_u32(h + kHeaderBytes - 4, crc32(h, kHeaderBytes - 4));
  write_bytes(os_, h, kHeaderBytes);
  offset_ = kHeaderBytes;
}

EsstWriter::~EsstWriter() {
  try {
    finish();
  } catch (...) {
    // A destructor cannot usefully report a write failure; finish() directly
    // to observe errors.
  }
}

void EsstWriter::append(const trace::Record& r) {
  if (finished_) throw std::logic_error("esst: append after finish");
  if (open_.records == 0) {
    open_.ts_first = r.timestamp;
    open_.sector_min = r.sector;
    open_.sector_max = r.sector;
    prev_ = trace::Record{};  // chunks decode independently
  }
  encode_record(payload_, r, prev_, meta_.multi_node);
  prev_ = r;
  ++open_.records;
  open_.ts_last = r.timestamp;
  open_.sector_min = std::min(open_.sector_min, r.sector);
  open_.sector_max = std::max(open_.sector_max, r.sector);
  max_ts_ = std::max(max_ts_, r.timestamp);
  ++total_records_;
  if (open_.records >= meta_.records_per_chunk) flush_chunk();
}

void EsstWriter::flush_chunk() {
  if (open_.records == 0) return;
  open_.offset = offset_;

  std::uint8_t hdr[kChunkHeaderBytes];
  put_u32(hdr, kChunkMagic);
  put_u32(hdr + 4, static_cast<std::uint32_t>(payload_.size()));
  write_bytes(os_, hdr, sizeof hdr);
  write_bytes(os_, payload_.data(), payload_.size());

  std::uint8_t ftr[kChunkFooterBytes];
  put_u32(ftr, open_.records);
  put_u64(ftr + 4, open_.ts_first);
  put_u64(ftr + 12, open_.ts_last);
  put_u32(ftr + 20, open_.sector_min);
  put_u32(ftr + 24, open_.sector_max);
  // CRC covers the footer summary too (offset 0..28-4), chained after the
  // payload, so a corrupted count or range is also detected.
  const std::uint32_t crc =
      crc32(ftr, kChunkFooterBytes - 4, crc32(payload_.data(), payload_.size()));
  put_u32(ftr + kChunkFooterBytes - 4, crc);
  write_bytes(os_, ftr, sizeof ftr);

  offset_ += kChunkHeaderBytes + payload_.size() + kChunkFooterBytes;
  index_.push_back(open_);
  payload_.clear();
  open_ = ChunkInfo{};
}

void EsstWriter::finish(SimTime duration) {
  if (finished_) return;
  flush_chunk();
  const std::uint64_t index_offset = offset_;
  std::vector<std::uint8_t> entries;
  entries.reserve(index_.size() * kIndexEntryBytes);
  for (const auto& c : index_) {
    std::uint8_t e[kIndexEntryBytes];
    put_u64(e, c.offset);
    put_u32(e + 8, c.records);
    put_u64(e + 12, c.ts_first);
    put_u64(e + 20, c.ts_last);
    put_u32(e + 28, c.sector_min);
    put_u32(e + 32, c.sector_max);
    entries.insert(entries.end(), e, e + sizeof e);
  }
  write_bytes(os_, entries.data(), entries.size());

  std::uint8_t t[kTrailer2Bytes];
  put_u32(t, static_cast<std::uint32_t>(index_.size()));
  put_u32(t + 4, crc32(entries.data(), entries.size()));
  put_u64(t + 8, duration > 0 ? duration : max_ts_);
  put_u64(t + 16, total_records_);
  put_u64(t + 24, index_offset);
  put_u64(t + 32, dropped_);
  std::memcpy(t + 40, kIndexMagic2, sizeof kIndexMagic2);
  write_bytes(os_, t, sizeof t);
  os_.flush();
  finished_ = true;
}

// ---------------------------------------------------------------- file sink

struct EsstFileSink::Impl {
  // Owned-file mode: a wide stream buffer (vs. the 8 KB libstdc++ default)
  // so a long capture syscalls once per ~quarter-MB of trace, not once per
  // chunk flush. Must be installed before open() to take effect.
  static constexpr std::size_t kFileBufBytes = 256 * 1024;
  std::vector<char> iobuf;
  std::ofstream file;         // owned stream (path constructor)
  std::ostream* os = nullptr; // the stream the writer targets
  std::unique_ptr<EsstWriter> writer;
  std::uint64_t records = 0;  // count survives a writer teardown on failure
  bool failed = false;
  std::string error;

  // Latch a failure: record the message, drop the writer (no more bytes are
  // attempted), and keep the sink alive so the drain path never sees the
  // exception. The partial file stays salvageable up to its last complete
  // chunk.
  void latch(const char* where, const std::exception& e) {
    failed = true;
    error = std::string(where) + ": " + e.what();
    writer.reset();
  }
};

EsstFileSink::EsstFileSink(const std::string& path, EsstMeta meta)
    : impl_(std::make_unique<Impl>()) {
  impl_->iobuf.resize(Impl::kFileBufBytes);
  impl_->file.rdbuf()->pubsetbuf(impl_->iobuf.data(),
                                 static_cast<std::streamsize>(
                                     impl_->iobuf.size()));
  impl_->file.open(path, std::ios::binary | std::ios::trunc);
  if (!impl_->file) throw std::runtime_error("esst: cannot open " + path);
  impl_->os = &impl_->file;
  impl_->writer = std::make_unique<EsstWriter>(*impl_->os, std::move(meta));
}

EsstFileSink::EsstFileSink(std::ostream& os, EsstMeta meta)
    : impl_(std::make_unique<Impl>()) {
  impl_->os = &os;
  impl_->writer = std::make_unique<EsstWriter>(*impl_->os, std::move(meta));
}

EsstFileSink::~EsstFileSink() = default;

void EsstFileSink::on_record(const trace::Record& r) {
  if (!impl_->writer) return;
  try {
    impl_->writer->append(r);
    impl_->records = impl_->writer->records_written();
  } catch (const std::exception& e) {
    impl_->latch("esst sink: append", e);
  }
}

void EsstFileSink::on_records(const trace::Record* r, std::size_t n) {
  if (!impl_->writer) return;
  try {
    for (std::size_t i = 0; i < n; ++i) impl_->writer->append(r[i]);
    impl_->records = impl_->writer->records_written();
  } catch (const std::exception& e) {
    impl_->records = impl_->writer->records_written();
    impl_->latch("esst sink: append", e);
  }
}

void EsstFileSink::on_finish(SimTime duration) {
  if (!impl_->writer) return;
  try {
    impl_->writer->finish(duration);
  } catch (const std::exception& e) {
    impl_->latch("esst sink: finish", e);
  }
}

void EsstFileSink::on_drops(std::uint64_t dropped) {
  if (impl_->writer) impl_->writer->set_dropped_records(dropped);
}

std::uint64_t EsstFileSink::records_written() const {
  return impl_->writer ? impl_->writer->records_written() : impl_->records;
}

bool EsstFileSink::failed() const { return impl_->failed; }

const std::string& EsstFileSink::error() const { return impl_->error; }

// ---------------------------------------------------------------- reader

namespace {

/// Reads the chunk at the current stream position. Returns false (leaving
/// `info`/`payload` unspecified) when the bytes there are not a structurally
/// complete chunk. `crc_ok` reports payload+footer integrity.
bool read_chunk_at(std::istream& is, std::uint64_t offset,
                   std::uint64_t file_size, ChunkInfo& info,
                   std::vector<std::uint8_t>& payload, bool& crc_ok) {
  if (offset + kChunkHeaderBytes + kChunkFooterBytes > file_size) return false;
  is.clear();
  is.seekg(static_cast<std::streamoff>(offset));
  std::uint8_t hdr[kChunkHeaderBytes];
  is.read(reinterpret_cast<char*>(hdr), sizeof hdr);
  if (!is || get_u32(hdr) != kChunkMagic) return false;
  const std::uint32_t payload_bytes = get_u32(hdr + 4);
  if (offset + kChunkHeaderBytes + payload_bytes + kChunkFooterBytes >
      file_size) {
    return false;
  }
  payload.resize(payload_bytes);
  is.read(reinterpret_cast<char*>(payload.data()), payload_bytes);
  std::uint8_t ftr[kChunkFooterBytes];
  is.read(reinterpret_cast<char*>(ftr), sizeof ftr);
  if (!is) return false;
  info.offset = offset;
  const std::uint32_t want = parse_chunk_footer(ftr, info);
  crc_ok = chunk_crc(payload.data(), payload.size(), ftr) == want;
  return true;
}

std::uint64_t stream_size(std::istream& is) {
  is.clear();
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  return end < 0 ? 0 : static_cast<std::uint64_t>(end);
}

}  // namespace

EsstReader::EsstReader(std::istream& is) : is_(is) {
  // Measure the file once; every later bounds check reuses file_size_. A
  // stream_size() per chunk read seeks to EOF and back, which discards the
  // stream's read buffer and turns a forward pass into a seek storm.
  const std::uint64_t size = stream_size(is_);
  file_size_ = size;
  if (size < kHeaderBytes) throw std::runtime_error("esst: file too short");
  is_.seekg(0);
  std::uint8_t h[kHeaderBytes];
  is_.read(reinterpret_cast<char*>(h), sizeof h);
  if (!is_) throw std::runtime_error("esst: bad magic");
  meta_ = parse_header(h);  // throws when the header is unusable

  // Fast path: the trailing index. The trailer comes in two sizes —
  // "ESSTIDX2" (48 bytes, carries the capture drop count) and the legacy
  // "ESSTIDX1" (40 bytes) — distinguished by the magic at the very end.
  std::size_t trailer_bytes = 0;
  TrailerInfo trailer;
  const std::size_t tail_len =
      static_cast<std::size_t>(std::min<std::uint64_t>(
          size - kHeaderBytes, kTrailer2Bytes));
  if (tail_len >= kTrailer1Bytes) {
    std::uint8_t t[kTrailer2Bytes] = {};
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(size - tail_len));
    is_.read(reinterpret_cast<char*>(t), static_cast<std::streamsize>(tail_len));
    if (is_) trailer_bytes = parse_trailer(t, tail_len, trailer);
  }
  if (trailer_bytes != 0) {
    capture_dropped_ = trailer.capture_dropped;
    const std::uint64_t index_bytes =
        std::uint64_t{trailer.chunk_count} * kIndexEntryBytes;
    if (trailer.index_offset >= kHeaderBytes &&
        trailer.index_offset + index_bytes + trailer_bytes == size) {
      std::vector<std::uint8_t> entries(index_bytes);
      is_.clear();
      is_.seekg(static_cast<std::streamoff>(trailer.index_offset));
      is_.read(reinterpret_cast<char*>(entries.data()),
               static_cast<std::streamsize>(entries.size()));
      if (is_ && crc32(entries.data(), entries.size()) == trailer.index_crc) {
        parse_index_entries(entries.data(), trailer.chunk_count, chunks_);
        duration_ = trailer.duration;
        expected_records_ = trailer.total_records;
        return;
      }
    }
  }

  // Salvage path: forward scan, keep every chunk whose CRC passes. A
  // trailerless file carries no capture drop count; don't trust one parsed
  // from a trailer that failed validation above.
  salvage_scan(size);
}

/// Rebuild the chunk list by one buffered forward pass. A single seek to
/// the first chunk, then strictly sequential reads: frame header, payload,
/// footer, repeat — no per-chunk re-seek, so salvaging a corrupt multi-GB
/// capture streams at disk speed instead of degrading with chunk count.
void EsstReader::salvage_scan(std::uint64_t size) {
  salvaged_ = true;
  capture_dropped_ = 0;
  std::uint64_t off = kHeaderBytes;
  is_.clear();
  is_.seekg(static_cast<std::streamoff>(off));
  while (off + kChunkHeaderBytes + kChunkFooterBytes <= size) {
    std::uint8_t hdr[kChunkHeaderBytes];
    is_.read(reinterpret_cast<char*>(hdr), sizeof hdr);
    if (!is_ || get_u32(hdr) != kChunkMagic) {
      // The trace ends here: index/trailer bytes, EOF, or torn framing.
      break;
    }
    const std::uint32_t payload_bytes = get_u32(hdr + 4);
    if (off + kChunkHeaderBytes + payload_bytes + kChunkFooterBytes > size) {
      // Chunk framing is intact but the body runs past EOF: a truncated
      // tail. Everything from `off` on is unaccounted for.
      ++scan_lost_chunks_;
      if (scan_first_bad_ == 0) scan_first_bad_ = off;
      break;
    }
    payload_scratch_.resize(payload_bytes);
    is_.read(reinterpret_cast<char*>(payload_scratch_.data()), payload_bytes);
    std::uint8_t ftr[kChunkFooterBytes];
    is_.read(reinterpret_cast<char*>(ftr), sizeof ftr);
    if (!is_) break;
    ChunkInfo info;
    info.offset = off;
    const std::uint32_t want = parse_chunk_footer(ftr, info);
    const bool crc_ok =
        chunk_crc(payload_scratch_.data(), payload_scratch_.size(), ftr) ==
        want;
    if (crc_ok) {
      chunks_.push_back(info);
      duration_ = std::max(duration_, info.ts_last);
    } else {
      ++corrupt_chunks_;
      ++scan_lost_chunks_;
      // The footer is untrusted (its CRC just failed); clamp its record
      // claim so a garbage count cannot dominate the report.
      scan_lost_records_ += std::min<std::uint64_t>(
          info.records,
          meta_.records_per_chunk > 0 ? meta_.records_per_chunk : info.records);
      if (scan_first_bad_ == 0) scan_first_bad_ = off;
    }
    off += kChunkHeaderBytes + payload_bytes + kChunkFooterBytes;
  }
  // A tail too short for a whole frame can still start with chunk magic —
  // that is a torn chunk, not trailer bytes, and it counts as lost.
  if (scan_first_bad_ == 0 && off + kChunkHeaderBytes <= size &&
      off + kChunkHeaderBytes + kChunkFooterBytes > size) {
    std::uint8_t hdr[kChunkHeaderBytes];
    is_.clear();
    is_.seekg(static_cast<std::streamoff>(off));
    is_.read(reinterpret_cast<char*>(hdr), sizeof hdr);
    if (is_ && get_u32(hdr) == kChunkMagic) {
      ++scan_lost_chunks_;
      scan_first_bad_ = off;
    }
  }
}

std::uint64_t EsstReader::total_records() const {
  std::uint64_t n = 0;
  for (const auto& c : chunks_) n += c.records;
  return n;
}

SalvageReport EsstReader::verify() {
  SalvageReport rep;
  rep.index_ok = !salvaged_;
  rep.capture_dropped = capture_dropped_;
  std::vector<trace::Record> recs;
  for (const auto& c : chunks_) {
    ChunkInfo info;
    bool crc_ok = false;
    bool decoded = false;
    if (read_chunk_at(is_, c.offset, file_size_, info, payload_scratch_,
                      crc_ok) &&
        crc_ok) {
      try {
        decode_payload_into(payload_scratch_.data(), payload_scratch_.size(),
                            info.records, meta_.multi_node, recs);
        decoded = true;
      } catch (const std::runtime_error&) {
        // CRC passed but the payload does not decode — counts as lost.
      }
    }
    if (decoded) {
      ++rep.chunks_kept;
      rep.records_kept += info.records;
    } else {
      ++rep.chunks_lost;
      rep.records_lost += c.records;
      if (!rep.first_bad_offset) rep.first_bad_offset = c.offset;
    }
  }
  // Fold in damage the constructor's salvage scan already discarded (those
  // chunks never made it into chunks_).
  rep.chunks_lost += scan_lost_chunks_;
  rep.records_lost += scan_lost_records_;
  if (scan_first_bad_ != 0 &&
      (!rep.first_bad_offset || scan_first_bad_ < *rep.first_bad_offset)) {
    rep.first_bad_offset = scan_first_bad_;
  }
  if (salvaged_) {
    // No trusted index: lost-record figures come from untrusted footers (a
    // clamped lower bound), and a truncated tail may hide more.
    rep.records_lost_exact = false;
  } else if (expected_records_ > rep.records_kept + rep.records_lost) {
    // The trailer's total outruns the index's per-chunk sum; trust the
    // larger claim so the report never understates loss.
    rep.records_lost = expected_records_ - rep.records_kept;
  }
  return rep;
}

void EsstReader::read_chunk_into(std::size_t idx,
                                 std::vector<trace::Record>& out) {
  const ChunkInfo& c = chunks_.at(idx);
  ChunkInfo read_info;
  bool crc_ok = false;
  if (!read_chunk_at(is_, c.offset, file_size_, read_info, payload_scratch_,
                     crc_ok)) {
    throw std::runtime_error("esst: chunk unreadable");
  }
  if (!crc_ok) throw std::runtime_error("esst: chunk CRC mismatch");
  decode_payload_into(payload_scratch_.data(), payload_scratch_.size(),
                      read_info.records, meta_.multi_node, out);
}

std::vector<trace::Record> EsstReader::read_chunk(std::size_t idx) {
  std::vector<trace::Record> out;
  read_chunk_into(idx, out);
  return out;
}

trace::TraceSet EsstReader::read_all() {
  trace::TraceSet ts(meta_.experiment, meta_.node_id);
  std::vector<trace::Record> recs;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    try {
      read_chunk_into(i, recs);
      ts.add_all(recs);
    } catch (const std::runtime_error&) {
      ++corrupt_chunks_;  // indexed file with a damaged chunk body
    }
  }
  ts.set_duration(duration_);
  return ts;
}

bool EsstReader::Filter::chunk_may_match(const ChunkInfo& c) const {
  return c.ts_last >= ts_min && c.ts_first <= ts_max &&
         std::uint64_t{c.sector_max} >= sector_min &&
         std::uint64_t{c.sector_min} <= sector_max;
}

bool EsstReader::Filter::record_matches(const trace::Record& r) const {
  if (r.timestamp < ts_min || r.timestamp > ts_max) return false;
  if (r.sector < sector_min || r.sector > sector_max) return false;
  if (rw >= 0 && (r.is_write != 0) != (rw != 0)) return false;
  return true;
}

trace::TraceSet EsstReader::read_filtered(const Filter& f,
                                          std::size_t* chunks_skipped) {
  trace::TraceSet ts(meta_.experiment, meta_.node_id);
  std::vector<trace::Record> recs;
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (!f.chunk_may_match(chunks_[i])) {
      ++skipped;
      continue;
    }
    try {
      read_chunk_into(i, recs);
    } catch (const std::runtime_error&) {
      ++corrupt_chunks_;
      continue;
    }
    for (const auto& r : recs) {
      if (f.record_matches(r)) ts.add(r);
    }
  }
  ts.set_duration(duration_);
  if (chunks_skipped != nullptr) *chunks_skipped = skipped;
  return ts;
}

// ---------------------------------------------------------------- wrappers

void write_esst(const trace::TraceSet& ts, std::ostream& os, EsstMeta meta) {
  if (meta.experiment.empty()) meta.experiment = ts.experiment();
  if (meta.node_id == 0) meta.node_id = ts.node_id();
  EsstWriter w(os, std::move(meta));
  for (const auto& r : ts.records()) w.append(r);
  w.finish(ts.duration());
}

void write_esst_file(const trace::TraceSet& ts, const std::string& path,
                     EsstMeta meta) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("esst: cannot open " + path);
  write_esst(ts, f, std::move(meta));
}

trace::TraceSet read_esst(std::istream& is) {
  EsstReader r(is);
  return r.read_all();
}

trace::TraceSet read_esst_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("esst: cannot open " + path);
  return read_esst(f);
}

bool is_esst(std::istream& is) {
  const auto pos = is.tellg();
  char m[8] = {};
  is.read(m, sizeof m);
  const bool ok =
      is.gcount() == sizeof m && std::memcmp(m, kMagic, sizeof m) == 0;
  is.clear();
  is.seekg(pos);
  return ok;
}

}  // namespace ess::telemetry
