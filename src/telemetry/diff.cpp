#include "telemetry/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

namespace ess::telemetry {
namespace {

void add_scalar(DiffResult& out, const std::string& metric, double a,
                double b, double rel_tol) {
  DiffEntry e;
  e.metric = metric;
  e.a = a;
  e.b = b;
  e.delta = std::fabs(a - b);
  e.limit = rel_tol * std::max(std::fabs(a), std::fabs(b));
  e.ok = e.delta <= e.limit || (a == 0 && b == 0);
  out.entries.push_back(e);
}

void add_pct(DiffResult& out, const std::string& metric, double a, double b,
             double pct_tol) {
  DiffEntry e;
  e.metric = metric;
  e.a = a;
  e.b = b;
  e.delta = std::fabs(a - b);
  e.limit = pct_tol;
  e.ok = e.delta <= e.limit;
  out.entries.push_back(e);
}

template <typename Map>
std::set<typename Map::key_type> key_union(const Map& a, const Map& b) {
  std::set<typename Map::key_type> keys;
  for (const auto& [k, v] : a) keys.insert(k);
  for (const auto& [k, v] : b) keys.insert(k);
  return keys;
}

double at_or_zero(const std::map<std::int64_t, double>& m, std::int64_t k) {
  const auto it = m.find(k);
  return it == m.end() ? 0.0 : it->second;
}
double at_or_zero(const std::map<std::uint64_t, double>& m, std::uint64_t k) {
  const auto it = m.find(k);
  return it == m.end() ? 0.0 : it->second;
}

}  // namespace

DiffResult diff_summaries(const StreamSummary::Result& a,
                          const StreamSummary::Result& b,
                          const DiffTolerance& tol) {
  DiffResult out;

  add_scalar(out, "records", static_cast<double>(a.records),
             static_cast<double>(b.records), tol.scalar_rel);
  add_scalar(out, "duration_sec", a.duration_sec, b.duration_sec,
             tol.scalar_rel);
  add_scalar(out, "requests_per_sec", a.requests_per_sec, b.requests_per_sec,
             tol.scalar_rel);
  add_scalar(out, "max_request_bytes",
             static_cast<double>(a.max_request_bytes),
             static_cast<double>(b.max_request_bytes), tol.scalar_rel);
  add_pct(out, "read_pct", a.read_pct, b.read_pct, tol.pct_points);
  add_pct(out, "write_pct", a.write_pct, b.write_pct, tol.pct_points);

  for (const auto size : key_union(a.size_pct, b.size_pct)) {
    char name[48];
    std::snprintf(name, sizeof name, "size_pct[%lldB]",
                  static_cast<long long>(size));
    add_pct(out, name, at_or_zero(a.size_pct, size),
            at_or_zero(b.size_pct, size), tol.pct_points);
  }
  for (const auto band : key_union(a.band_pct, b.band_pct)) {
    char name[48];
    std::snprintf(name, sizeof name, "band_pct[%llu]",
                  static_cast<unsigned long long>(band));
    add_pct(out, name, at_or_zero(a.band_pct, band),
            at_or_zero(b.band_pct, band), tol.pct_points);
  }

  if (tol.topk > 0) {
    std::set<std::uint64_t> ha, hb;
    for (std::size_t i = 0; i < std::min(tol.topk, a.hot.size()); ++i) {
      ha.insert(a.hot[i].sector);
    }
    for (std::size_t i = 0; i < std::min(tol.topk, b.hot.size()); ++i) {
      hb.insert(b.hot[i].sector);
    }
    std::size_t shared = 0;
    for (const auto s : ha) shared += hb.count(s);
    const std::size_t denom = std::max(ha.size(), hb.size());
    DiffEntry e;
    e.metric = "hot_top" + std::to_string(tol.topk) + "_overlap";
    e.a = denom > 0 ? static_cast<double>(shared) /
                          static_cast<double>(denom)
                    : 1.0;
    e.b = 1.0;
    e.delta = 1.0 - e.a;
    e.limit = 1.0 - tol.topk_min_overlap;
    e.ok = e.a >= tol.topk_min_overlap || denom == 0;
    out.entries.push_back(e);
  }

  if (a.lossy) {
    out.notes.push_back("a (" + (a.experiment.empty() ? "?" : a.experiment) +
                        "): lossy capture, " +
                        std::to_string(a.dropped_records) +
                        " record(s) dropped upstream");
  }
  if (b.lossy) {
    out.notes.push_back("b (" + (b.experiment.empty() ? "?" : b.experiment) +
                        "): lossy capture, " +
                        std::to_string(b.dropped_records) +
                        " record(s) dropped upstream");
  }

  for (const auto& e : out.entries) {
    if (!e.ok) ++out.failed;
  }
  out.ok = out.failed == 0;
  return out;
}

std::string render_diff(const DiffResult& d) {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof line, "  %-28s %14s %14s %10s %10s\n", "metric",
                "a", "b", "delta", "limit");
  os << line;
  for (const auto& e : d.entries) {
    std::snprintf(line, sizeof line,
                  "%s %-28s %14.4f %14.4f %10.4f %10.4f\n",
                  e.ok ? "  " : "!!", e.metric.c_str(), e.a, e.b, e.delta,
                  e.limit);
    os << line;
  }
  for (const auto& n : d.notes) os << "note: " << n << '\n';
  os << (d.ok ? "OK: characterizations match within tolerance\n"
              : "FAIL: " + std::to_string(d.failed) +
                    " metric(s) out of tolerance\n");
  return os.str();
}

}  // namespace ess::telemetry
