// Incremental characterization consumers.
//
// Each consumer is a Sink holding O(state) memory, never the trace itself,
// so the same code characterizes a finished TraceSet, an ESST file chunk by
// chunk, or a run still in flight. Offline, their outputs equal the batch
// analysis::characterize results on the same records (tested): the size
// histogram, R/W mix, spatial bands and hot-sector ranking are exact; the
// top-K sketch degrades gracefully (with bounded, reported error) only if
// the number of distinct sectors exceeds its capacity.
//
// Every consumer is also *mergeable*: merge(other) folds a second
// consumer's state in, equivalent to one pass over this consumer's records
// followed by the other's (tested as a property over random splits). The
// chunk-parallel scan engine (analysis/parallel.hpp) leans on this: one
// consumer per shard of contiguous chunks, merged left-to-right. Counting
// consumers merge exactly; the sliding-rate window assumes `other` saw the
// later segment of a time-ordered stream (what contiguous chunk shards
// guarantee); the top-K sketch merge stays exact until capacity is
// exceeded, then reports its overcount bound per entry.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/sink.hpp"
#include "util/stats.hpp"

namespace ess::telemetry {

/// Request-size histogram (exact; sizes take a handful of distinct values).
class SizeHistogramConsumer final : public Sink {
 public:
  void on_record(const trace::Record& r) override {
    hist_.add(static_cast<std::int64_t>(r.size_bytes));
    max_bytes_ = std::max(max_bytes_, r.size_bytes);
  }

  /// Exact: counting state sums cell-wise.
  void merge(const SizeHistogramConsumer& other) {
    hist_.merge(other.hist_);
    max_bytes_ = std::max(max_bytes_, other.max_bytes_);
  }

  const Histogram& histogram() const { return hist_; }
  std::uint32_t max_request_bytes() const { return max_bytes_; }
  double fraction(std::uint32_t bytes) const {
    return hist_.fraction(static_cast<std::int64_t>(bytes));
  }
  double fraction_at_least(std::uint32_t bytes) const;

 private:
  Histogram hist_;
  std::uint32_t max_bytes_ = 0;
};

/// Read/write mix and overall request rate (Table 1's row).
class RwMixConsumer final : public Sink {
 public:
  void on_record(const trace::Record& r) override {
    if (r.is_write) {
      ++writes_;
    } else {
      ++reads_;
    }
  }
  void on_finish(SimTime duration) override { duration_ = duration; }

  /// Exact: counters sum; the capture duration is whichever side saw one.
  void merge(const RwMixConsumer& other) {
    reads_ += other.reads_;
    writes_ += other.writes_;
    duration_ = std::max(duration_, other.duration_);
  }

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t total() const { return reads_ + writes_; }
  double read_pct() const;
  double write_pct() const;
  /// Over the full capture; valid after on_finish.
  double requests_per_sec() const;

 private:
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  SimTime duration_ = 0;
};

/// Requests per second over a sliding window ending at the newest record —
/// the "current rate" of a run in flight. Memory is bounded by the records
/// inside one window.
class SlidingRateConsumer final : public Sink {
 public:
  explicit SlidingRateConsumer(SimTime window = sec(10)) : window_(window) {}

  void on_record(const trace::Record& r) override;

  /// Fold in the later segment of a time-partitioned stream: `other` must
  /// have consumed records at-or-after this consumer's (the contiguous
  /// chunk shards of a capture satisfy this). Equals a single pass over
  /// the concatenation for nondecreasing timestamps.
  void merge(const SlidingRateConsumer& other);

  /// Rate over the window ending at the latest record seen.
  double rate() const;
  SimTime window() const { return window_; }

 private:
  SimTime window_;
  std::deque<SimTime> recent_;
};

/// Fixed-window request-rate series; finalize() reproduces
/// analysis::rate_over_time (records past `duration` clamp into the last
/// window, exactly as the batch code does).
class WindowRateConsumer final : public Sink {
 public:
  explicit WindowRateConsumer(SimTime window = sec(10)) : window_(window) {}

  void on_record(const trace::Record& r) override;
  void on_finish(SimTime duration) override;

  /// Exact for equal window sizes: per-window counts sum element-wise.
  void merge(const WindowRateConsumer& other);

  /// Valid after on_finish; empty when duration or window is 0.
  const std::vector<double>& series() const { return series_; }

 private:
  SimTime window_;
  std::vector<std::uint64_t> counts_;  // by true window index
  std::vector<double> series_;
};

/// Spatial locality per band of `band_sectors` sectors (Fig. 7; exact).
class SpatialBandsConsumer final : public Sink {
 public:
  explicit SpatialBandsConsumer(std::uint64_t band_sectors = 100'000)
      : band_sectors_(band_sectors) {}

  void on_record(const trace::Record& r) override {
    ++bands_[r.sector / band_sectors_ * band_sectors_];
    ++total_;
  }

  /// Exact: per-band counters sum. Band widths must match.
  void merge(const SpatialBandsConsumer& other);

  struct Band {
    std::uint64_t band_start_sector = 0;
    std::uint64_t requests = 0;
    double pct = 0;
  };
  /// Ascending by band start, percentages of the records seen so far —
  /// field-for-field what analysis::spatial_locality returns.
  std::vector<Band> bands() const;
  std::uint64_t band_sectors() const { return band_sectors_; }

 private:
  std::uint64_t band_sectors_;
  std::map<std::uint64_t, std::uint64_t> bands_;
  std::uint64_t total_ = 0;
};

/// Streaming hot-sector top-K: the Space-Saving sketch (Metwally, Agrawal &
/// El Abbadi, 2005). Keeps `capacity` counters; when a new sector arrives
/// at a full table it replaces the minimum counter and inherits its count
/// as the overestimation bound. While the distinct-sector population fits
/// in `capacity` no replacement ever happens and every count is exact —
/// sized for this study's traces by default, so the streamed hot-spot
/// ranking equals the batch analysis::hot_spots ranking.
class TopKSectorsConsumer final : public Sink {
 public:
  explicit TopKSectorsConsumer(std::size_t capacity = 65'536);

  void on_record(const trace::Record& r) override;
  void on_finish(SimTime duration) override { duration_ = duration; }

  struct Entry {
    std::uint64_t sector = 0;
    std::uint64_t count = 0;  // upper bound; exact when error == 0
    std::uint64_t error = 0;  // max overcount inherited at replacement
    double per_sec = 0;       // count / capture duration (after on_finish)
  };

  /// Mergeable-summaries union of two Space-Saving sketches (Agarwal et
  /// al., PODS 2012): counts and overcount bounds sum; a sector absent
  /// from one inexact side additionally absorbs that side's minimum
  /// counter (it may have occurred there up to that many times). Exact —
  /// identical to one pass over the concatenated records — while both
  /// sides are exact and the union of tracked sectors fits `capacity`.
  /// Afterwards every count stays an upper bound and count - error a
  /// lower bound of the true frequency.
  void merge(const TopKSectorsConsumer& other);

  /// Top `k` by (count desc, sector asc) — analysis::hot_spots order.
  std::vector<Entry> top(std::size_t k) const;

  /// True while no counter was ever evicted (counts are exact frequencies).
  bool exact() const { return exact_; }
  std::size_t distinct_tracked() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  /// Slot of the minimum-count entry with the lowest index (the eviction
  /// victim). Amortized O(1): counts only grow, so every entry at the
  /// current minimum is in the candidate stack from the last rescan.
  std::size_t take_min_slot();

  std::size_t capacity_;
  std::unordered_map<std::uint64_t, std::size_t> where_;  // sector -> slot
  std::vector<Entry> entries_;
  std::uint64_t min_count_ = 0;              // count shared by candidates
  std::vector<std::size_t> min_candidates_;  // descending index, lazily stale
  bool exact_ = true;
  SimTime duration_ = 0;
};

/// Per-origin-node request counts (exact) — the per-disk rows behind the
/// paper's Section 5 "average per disk" columns. Only a multi-node record
/// stream (an `esstrace merge` output) populates more than one row; a
/// single-node capture collapses to node 0.
class PerNodeConsumer final : public Sink {
 public:
  void on_record(const trace::Record& r) override {
    auto& c = nodes_[r.node];
    if (r.is_write) {
      ++c.writes;
    } else {
      ++c.reads;
    }
  }

  /// Exact: counters sum node-wise.
  void merge(const PerNodeConsumer& other) {
    for (const auto& [node, c] : other.nodes_) {
      auto& mine = nodes_[node];
      mine.reads += c.reads;
      mine.writes += c.writes;
    }
  }

  struct Counts {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t total() const { return reads + writes; }
  };
  /// Ascending by node id.
  const std::map<std::int32_t, Counts>& nodes() const { return nodes_; }
  std::size_t distinct_nodes() const { return nodes_.size(); }

 private:
  std::map<std::int32_t, Counts> nodes_;
};

/// The standard consumer bundle: everything `esstrace stats` prints, the
/// snapshot emitter reads, and `esstrace diff` compares.
class StreamSummary final : public Sink {
 public:
  struct Options {
    std::uint64_t band_sectors = 100'000;
    std::size_t topk_capacity = 65'536;
    SimTime sliding_window = sec(10);
  };

  StreamSummary() : StreamSummary(Options{}) {}
  explicit StreamSummary(const Options& opts);

  void on_record(const trace::Record& r) override;
  void on_finish(SimTime duration) override;
  void on_drops(std::uint64_t dropped) override { dropped_ = dropped; }

  /// Fold in a summary built over a *later* time-ordered segment of the
  /// same stream (the sliding-rate precondition; every other sub-consumer
  /// merges exactly in any order). Drop tallies sum, so report drops to
  /// one side only — or after merging, as the parallel scan engine does.
  /// Call on_finish afterwards, not on the shards.
  void merge(const StreamSummary& other);

  const SizeHistogramConsumer& sizes() const { return sizes_; }
  const RwMixConsumer& rw() const { return rw_; }
  const SpatialBandsConsumer& spatial() const { return spatial_; }
  const TopKSectorsConsumer& hot() const { return hot_; }
  const SlidingRateConsumer& sliding_rate() const { return sliding_; }
  const PerNodeConsumer& per_node() const { return per_node_; }

  std::uint64_t records() const { return rw_.total(); }
  SimTime last_timestamp() const { return last_ts_; }
  bool finished() const { return finished_; }
  SimTime duration() const { return duration_; }

  /// The comparable characterization (esstrace stats/diff payload).
  struct Result {
    std::string experiment;
    std::uint64_t records = 0;
    double duration_sec = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double read_pct = 0;
    double write_pct = 0;
    double requests_per_sec = 0;
    std::uint32_t max_request_bytes = 0;
    /// size_bytes -> percentage of requests.
    std::map<std::int64_t, double> size_pct;
    /// band start sector -> percentage of requests.
    std::map<std::uint64_t, double> band_pct;
    std::vector<TopKSectorsConsumer::Entry> hot;  // top 10
    bool hot_exact = true;
    /// Per-origin-node breakdown (Section 5's per-disk rows). Populated
    /// only when the stream carried more than one distinct node id — a
    /// merged multi-node file — so single-node output is unchanged.
    struct NodeRow {
      std::int32_t node = 0;
      std::uint64_t records = 0;
      std::uint64_t reads = 0;
      std::uint64_t writes = 0;
      double read_pct = 0;
      double requests_per_sec = 0;  // over the capture duration
    };
    std::vector<NodeRow> per_node;
    /// Capture-loss annotation: records that never reached the stream
    /// (ring overflow at capture time, chunks lost to corruption). A lossy
    /// result is still comparable, but its provenance is on the label.
    std::uint64_t dropped_records = 0;
    bool lossy = false;
  };
  Result result(const std::string& experiment = {}) const;

 private:
  SizeHistogramConsumer sizes_;
  RwMixConsumer rw_;
  SpatialBandsConsumer spatial_;
  TopKSectorsConsumer hot_;
  SlidingRateConsumer sliding_;
  PerNodeConsumer per_node_;
  SimTime last_ts_ = 0;
  SimTime duration_ = 0;
  std::uint64_t dropped_ = 0;
  bool finished_ = false;
};

}  // namespace ess::telemetry
