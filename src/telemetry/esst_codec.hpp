// ESST wire-format codec: the one place the byte layout lives.
//
// Both ESST read paths — the streaming/salvaging `EsstReader` (esst.cpp)
// and the zero-copy `EsstView` (esst_view.cpp) — and the writer decode and
// encode through these helpers, so the two paths cannot drift: same header
// and trailer parsing, same varint rules, same record decode, byte for
// byte.
//
// Decode is the analysis hot loop (a multi-GB capture is nothing but these
// varints), so it comes in two forms:
//   * the checked form: every byte access bounds-tested — used near the
//     end of a payload and by anything handling untrusted lengths;
//   * the fast form: caller guarantees `kMaxRecordBytes` readable bytes,
//     so the common 1- and 2-byte varints decode with one or two loads and
//     a single well-predicted branch, no per-byte bounds checks.
// `decode_payload_into` runs the fast form while a worst-case record still
// fits in the remaining payload and drops to the checked form for the
// tail, which keeps the loop branch-light without ever reading past the
// span.
//
// This header is telemetry-internal: include it from telemetry/*.cpp, not
// from public headers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "telemetry/esst.hpp"
#include "trace/record.hpp"

namespace ess::telemetry::codec {

inline constexpr char kMagic[8] = {'E', 'S', 'S', 'T', '0', '0', '0', '1'};
inline constexpr char kIndexMagic1[8] = {'E', 'S', 'S', 'T', 'I', 'D', 'X', '1'};
inline constexpr char kIndexMagic2[8] = {'E', 'S', 'S', 'T', 'I', 'D', 'X', '2'};
inline constexpr std::uint32_t kChunkMagic = 0x4b4e4843;  // "CHNK"
inline constexpr std::uint16_t kVersion = 1;       // single-node stream
inline constexpr std::uint16_t kVersionMulti = 2;  // adds a node delta
inline constexpr std::size_t kHeaderBytes = 128;
inline constexpr std::size_t kNameBytes = 72;
inline constexpr std::size_t kChunkHeaderBytes = 8;   // magic + payload size
inline constexpr std::size_t kChunkFooterBytes = 28;  // count, ts x2,
                                                      // sector x2, crc
inline constexpr std::size_t kIndexEntryBytes = 36;
inline constexpr std::size_t kTrailer1Bytes = 40;  // legacy, no drop count
inline constexpr std::size_t kTrailer2Bytes = 48;  // adds capture drops

/// Longest single varint (64 bits in 7-bit groups).
inline constexpr std::size_t kMaxVarintBytes = 10;
/// Worst-case encoded record: ts/sector/size/node svarints + flags uvarint.
inline constexpr std::size_t kMaxRecordBytes = 5 * kMaxVarintBytes;

// ---- little-endian scalar packing (explicit: the header is a wire format,
// not a memory dump, so it stays valid across compilers and platforms).

inline void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// ---- varint / zigzag ------------------------------------------------------

inline void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_svarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  // zigzag: small magnitudes of either sign stay short.
  put_uvarint(out, (static_cast<std::uint64_t>(v) << 1) ^
                       static_cast<std::uint64_t>(v >> 63));
}

inline std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// Fast encode: caller guarantees kMaxVarintBytes writable at `p`. The
/// mirror of get_uvarint_fast — the 1-byte case (almost every delta after
/// zigzag) is one store and one predictable branch, 2 bytes costs one more
/// of each, and only genuinely wide values take the continuation loop.
/// Emits exactly the bytes put_uvarint would (canonical LEB128), so the
/// two encoders can never produce different files. Returns the byte after
/// the varint.
inline std::uint8_t* put_uvarint_fast(std::uint8_t* p, std::uint64_t v) {
  if (v < 0x80) {
    p[0] = static_cast<std::uint8_t>(v);
    return p + 1;
  }
  p[0] = static_cast<std::uint8_t>(v) | 0x80;
  v >>= 7;
  if (v < 0x80) {
    p[1] = static_cast<std::uint8_t>(v);
    return p + 2;
  }
  p[1] = static_cast<std::uint8_t>(v) | 0x80;
  v >>= 7;
  p += 2;
  while (v >= 0x80) {
    *p++ = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *p++ = static_cast<std::uint8_t>(v);
  return p;
}

inline std::uint8_t* put_svarint_fast(std::uint8_t* p, std::int64_t v) {
  return put_uvarint_fast(p, (static_cast<std::uint64_t>(v) << 1) ^
                                 static_cast<std::uint64_t>(v >> 63));
}

/// Checked decode: safe at any distance from the end of the span.
inline bool get_uvarint(const std::uint8_t* p, std::size_t len,
                        std::size_t& pos, std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= len) return false;
    const std::uint8_t b = p[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return true;
  }
  return false;  // overlong
}

inline bool get_svarint(const std::uint8_t* p, std::size_t len,
                        std::size_t& pos, std::int64_t& v) {
  std::uint64_t u = 0;
  if (!get_uvarint(p, len, pos, u)) return false;
  v = unzigzag(u);
  return true;
}

/// Fast decode: caller guarantees kMaxVarintBytes readable at `p`. The
/// 1-byte case (almost every delta after zigzag) is one load and one
/// predictable branch; 2 bytes costs one more of each; longer encodings
/// take the unrolled continuation loop. Returns the byte after the varint,
/// or nullptr for an overlong (>10 byte) encoding.
inline const std::uint8_t* get_uvarint_fast(const std::uint8_t* p,
                                            std::uint64_t& v) {
  std::uint64_t b = p[0];
  if ((b & 0x80) == 0) {
    v = b;
    return p + 1;
  }
  std::uint64_t r = b & 0x7f;
  b = p[1];
  r |= (b & 0x7f) << 7;
  if ((b & 0x80) == 0) {
    v = r;
    return p + 2;
  }
  p += 2;
  for (int shift = 14; shift < 70; shift += 7) {
    b = *p++;
    r |= (b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      v = r;
      return p;
    }
  }
  return nullptr;  // overlong
}

inline const std::uint8_t* get_svarint_fast(const std::uint8_t* p,
                                            std::int64_t& v) {
  std::uint64_t u = 0;
  p = get_uvarint_fast(p, u);
  if (p != nullptr) v = unzigzag(u);
  return p;
}

// ---- record encode / decode ----------------------------------------------

/// What encode_payload_into measured while encoding: the payload's length
/// within the (worst-case-sized) output buffer, and the running max
/// timestamp of the batch — the writer's trailer duration wants the max
/// over *all* records, which for unsorted streams is not ts_last.
struct EncodeResult {
  std::size_t payload_len = 0;
  SimTime max_ts = 0;
};

namespace detail {

/// The encode hot loop, monomorphized per format version like its decode
/// twin below. `out` is kept at worst-case size (capacity is reused across
/// chunks and never shrunk, so steady state touches no allocator and pays
/// no resize memset); the real payload length comes back in the result.
/// Also fills `info`'s footer summary (records/ts/sector ranges) in the
/// same pass, so the caller serializes the footer without re-walking the
/// batch.
template <bool MultiNode>
inline EncodeResult encode_payload_impl(const trace::Record* recs,
                                        std::size_t n,
                                        std::vector<std::uint8_t>& out,
                                        ChunkInfo& info) {
  constexpr std::size_t per_record_max =
      kMaxVarintBytes * (MultiNode ? 5 : 4);
  EncodeResult res;
  info.records = static_cast<std::uint32_t>(n);
  if (n == 0) {
    info.ts_first = info.ts_last = 0;
    info.sector_min = info.sector_max = 0;
    return res;
  }
  if (out.size() < per_record_max * n) out.resize(per_record_max * n);
  info.ts_first = recs[0].timestamp;
  info.ts_last = recs[n - 1].timestamp;
  info.sector_min = recs[0].sector;
  info.sector_max = recs[0].sector;
  std::uint8_t* q = out.data();
  trace::Record prev;  // chunks decode independently: delta base resets
  for (std::size_t i = 0; i < n; ++i) {
    const trace::Record& r = recs[i];
    q = put_svarint_fast(q, static_cast<std::int64_t>(r.timestamp) -
                                static_cast<std::int64_t>(prev.timestamp));
    q = put_svarint_fast(q, static_cast<std::int64_t>(r.sector) -
                                static_cast<std::int64_t>(prev.sector));
    q = put_svarint_fast(q, static_cast<std::int64_t>(r.size_bytes) -
                                static_cast<std::int64_t>(prev.size_bytes));
    q = put_uvarint_fast(q, (static_cast<std::uint64_t>(r.outstanding) << 1) |
                                (r.is_write ? 1u : 0u));
    if constexpr (MultiNode) {
      q = put_svarint_fast(q, static_cast<std::int64_t>(r.node) -
                                  static_cast<std::int64_t>(prev.node));
    }
    prev = r;
    info.sector_min = std::min(info.sector_min, r.sector);
    info.sector_max = std::max(info.sector_max, r.sector);
    res.max_ts = std::max(res.max_ts, r.timestamp);
  }
  res.payload_len = static_cast<std::size_t>(q - out.data());
  return res;
}

}  // namespace detail

/// Encode a whole record batch into one chunk payload. `out` grows to the
/// batch's worst case once and is then reused verbatim across chunks — the
/// valid bytes are [0, result.payload_len), not out.size(). Byte-for-byte
/// identical to the original record-at-a-time put_svarint loop.
inline EncodeResult encode_payload_into(const trace::Record* recs,
                                        std::size_t n, bool multi_node,
                                        std::vector<std::uint8_t>& out,
                                        ChunkInfo& info) {
  return multi_node ? detail::encode_payload_impl<true>(recs, n, out, info)
                    : detail::encode_payload_impl<false>(recs, n, out, info);
}

/// Serialize a chunk footer's 24-byte summary (everything but the CRC slot)
/// from its index entry — shared by the writer's serial and offloaded
/// paths, which must frame chunks identically.
inline void put_chunk_footer_summary(std::uint8_t* ftr,
                                     const ChunkInfo& info) {
  put_u32(ftr, info.records);
  put_u64(ftr + 4, info.ts_first);
  put_u64(ftr + 12, info.ts_last);
  put_u32(ftr + 20, info.sector_min);
  put_u32(ftr + 24, info.sector_max);
}

namespace detail {

[[noreturn]] inline void throw_underrun() {
  throw std::runtime_error("esst: chunk payload underruns record count");
}

inline trace::Record apply_deltas(const trace::Record& prev, std::int64_t dts,
                                  std::int64_t dsec, std::int64_t dsize,
                                  std::uint64_t flags, std::int64_t dnode) {
  trace::Record r;
  r.timestamp =
      static_cast<SimTime>(static_cast<std::int64_t>(prev.timestamp) + dts);
  r.sector =
      static_cast<std::uint32_t>(static_cast<std::int64_t>(prev.sector) + dsec);
  r.size_bytes = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(prev.size_bytes) + dsize);
  r.is_write = static_cast<std::uint8_t>(flags & 1);
  r.outstanding = static_cast<std::uint16_t>(flags >> 1);
  r.node =
      static_cast<std::int32_t>(static_cast<std::int64_t>(prev.node) + dnode);
  return r;
}

/// The hot loop, monomorphized per format version so the per-record
/// multi-node branch vanishes entirely.
template <bool MultiNode>
inline void decode_payload_impl(const std::uint8_t* p, std::size_t len,
                                std::uint32_t count,
                                std::vector<trace::Record>& out) {
  out.clear();
  out.reserve(count);
  trace::Record prev;
  constexpr std::size_t per_record_max =
      kMaxVarintBytes * (MultiNode ? 5 : 4);
  std::size_t pos = 0;
  std::uint32_t i = 0;
  // Fast path: while a worst-case record fits in the remaining span, every
  // varint decodes without per-byte bounds checks.
  while (i < count && len - pos >= per_record_max) {
    const std::uint8_t* q = p + pos;
    std::int64_t dts = 0, dsec = 0, dsize = 0, dnode = 0;
    std::uint64_t flags = 0;
    if ((q = get_svarint_fast(q, dts)) == nullptr ||
        (q = get_svarint_fast(q, dsec)) == nullptr ||
        (q = get_svarint_fast(q, dsize)) == nullptr ||
        (q = get_uvarint_fast(q, flags)) == nullptr) {
      throw_underrun();
    }
    if constexpr (MultiNode) {
      if ((q = get_svarint_fast(q, dnode)) == nullptr) throw_underrun();
    }
    pos = static_cast<std::size_t>(q - p);
    prev = apply_deltas(prev, dts, dsec, dsize, flags, dnode);
    out.push_back(prev);
    ++i;
  }
  // Checked tail: the last few records, where a worst-case encoding could
  // run past the span.
  for (; i < count; ++i) {
    std::int64_t dts = 0, dsec = 0, dsize = 0, dnode = 0;
    std::uint64_t flags = 0;
    if (!get_svarint(p, len, pos, dts) || !get_svarint(p, len, pos, dsec) ||
        !get_svarint(p, len, pos, dsize) ||
        !get_uvarint(p, len, pos, flags) ||
        (MultiNode && !get_svarint(p, len, pos, dnode))) {
      throw_underrun();
    }
    prev = apply_deltas(prev, dts, dsec, dsize, flags, dnode);
    out.push_back(prev);
  }
  if (pos != len) {
    throw std::runtime_error("esst: chunk payload has trailing bytes");
  }
}

}  // namespace detail

/// Decode a whole chunk payload into `out` (cleared first, capacity
/// reused). Throws std::runtime_error when the payload underruns the
/// record count or carries trailing bytes.
inline void decode_payload_into(const std::uint8_t* p, std::size_t len,
                                std::uint32_t count, bool multi_node,
                                std::vector<trace::Record>& out) {
  if (multi_node) {
    detail::decode_payload_impl<true>(p, len, count, out);
  } else {
    detail::decode_payload_impl<false>(p, len, count, out);
  }
}

// ---- header / index / trailer ---------------------------------------------

/// Parse and validate the 128-byte fixed header (magic, version, CRC).
/// Throws std::runtime_error when the header is unusable — the same
/// contract as the EsstReader constructor.
inline EsstMeta parse_header(const std::uint8_t* h) {
  if (std::memcmp(h, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("esst: bad magic");
  }
  const std::uint16_t version = get_u16(h + 8);
  if (version != kVersion && version != kVersionMulti) {
    throw std::runtime_error("esst: unsupported version");
  }
  if (crc32(h, kHeaderBytes - 4) != get_u32(h + kHeaderBytes - 4)) {
    throw std::runtime_error("esst: header CRC mismatch");
  }
  EsstMeta meta;
  meta.multi_node = version == kVersionMulti;
  meta.node_id = static_cast<std::int32_t>(get_u32(h + 12));
  meta.total_sectors = get_u64(h + 16);
  meta.sector_bytes = get_u32(h + 24);
  meta.records_per_chunk = get_u32(h + 28);
  meta.seed = get_u64(h + 32);
  meta.ram_bytes = get_u64(h + 40);
  const std::uint32_t name_len =
      std::min<std::uint32_t>(get_u32(h + 48), kNameBytes);
  meta.experiment.assign(reinterpret_cast<const char*>(h + 52), name_len);
  return meta;
}

struct TrailerInfo {
  std::uint32_t chunk_count = 0;
  std::uint32_t index_crc = 0;
  std::uint64_t duration = 0;
  std::uint64_t total_records = 0;
  std::uint64_t index_offset = 0;
  std::uint64_t capture_dropped = 0;  // 0 for legacy "ESSTIDX1" trailers
};

/// Look for a trailer at the end of `tail` (the file's last `tail_len`
/// bytes). Tries the 48-byte "ESSTIDX2" layout first, then the legacy
/// 40-byte "ESSTIDX1". Returns the trailer's byte size, or 0 when neither
/// magic matches (the caller falls back to a salvage scan).
inline std::size_t parse_trailer(const std::uint8_t* tail,
                                 std::size_t tail_len, TrailerInfo& out) {
  const std::uint8_t* t = nullptr;
  std::size_t trailer_bytes = 0;
  if (tail_len >= kTrailer2Bytes &&
      std::memcmp(tail + tail_len - kTrailer2Bytes + 40, kIndexMagic2,
                  sizeof kIndexMagic2) == 0) {
    t = tail + tail_len - kTrailer2Bytes;
    trailer_bytes = kTrailer2Bytes;
    out.capture_dropped = get_u64(t + 32);
  } else if (tail_len >= kTrailer1Bytes &&
             std::memcmp(tail + tail_len - kTrailer1Bytes + 32, kIndexMagic1,
                         sizeof kIndexMagic1) == 0) {
    t = tail + tail_len - kTrailer1Bytes;
    trailer_bytes = kTrailer1Bytes;
    out.capture_dropped = 0;
  } else {
    return 0;
  }
  out.chunk_count = get_u32(t);
  out.index_crc = get_u32(t + 4);
  out.duration = get_u64(t + 8);
  out.total_records = get_u64(t + 16);
  out.index_offset = get_u64(t + 24);
  return trailer_bytes;
}

/// Decode `chunk_count` fixed-size index entries into ChunkInfo rows.
/// The caller has already CRC-checked the entry bytes.
inline void parse_index_entries(const std::uint8_t* entries,
                                std::uint32_t chunk_count,
                                std::vector<ChunkInfo>& out) {
  out.clear();
  out.reserve(chunk_count);
  for (std::uint32_t i = 0; i < chunk_count; ++i) {
    const std::uint8_t* e = entries + i * kIndexEntryBytes;
    ChunkInfo c;
    c.offset = get_u64(e);
    c.records = get_u32(e + 8);
    c.ts_first = get_u64(e + 12);
    c.ts_last = get_u64(e + 20);
    c.sector_min = get_u32(e + 28);
    c.sector_max = get_u32(e + 32);
    out.push_back(c);
  }
}

/// Parse a chunk's 28-byte footer into `info` (offset left untouched) and
/// return the footer's stored CRC.
inline std::uint32_t parse_chunk_footer(const std::uint8_t* ftr,
                                        ChunkInfo& info) {
  info.records = get_u32(ftr);
  info.ts_first = get_u64(ftr + 4);
  info.ts_last = get_u64(ftr + 12);
  info.sector_min = get_u32(ftr + 20);
  info.sector_max = get_u32(ftr + 24);
  return get_u32(ftr + kChunkFooterBytes - 4);
}

/// The chunk CRC rule: payload first, then the footer summary chained on.
inline std::uint32_t chunk_crc(const std::uint8_t* payload,
                               std::size_t payload_len,
                               const std::uint8_t* ftr) {
  return crc32(ftr, kChunkFooterBytes - 4, crc32(payload, payload_len));
}

}  // namespace ess::telemetry::codec
