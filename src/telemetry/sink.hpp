// Streaming telemetry: the record-consumer interface.
//
// The instrumented driver (and the kernel's trace-drain daemon) publish each
// trace::Record to a Sink as it is emitted. Consumers are incremental: they
// never hold the whole trace, so trace length is bounded by disk (ESST
// files) or by the consumer's own state (histograms, top-K sketches), not by
// RAM — the difference between a one-off measurement harness and a tool that
// can watch a production-length run in flight.
#pragma once

#include <vector>

#include "trace/record.hpp"

namespace ess::telemetry {

class Sink {
 public:
  virtual ~Sink() = default;

  /// One record, in emission order.
  virtual void on_record(const trace::Record& r) = 0;

  /// End of stream. `duration` is the wall-clock span of the capture (which
  /// can extend past the last record). Consumers finalize rate metrics here;
  /// file writers flush and write their index.
  virtual void on_finish(SimTime duration) { (void)duration; }

  /// Capture-loss accounting: `dropped` records overflowed out of the
  /// kernel ring and never reached this sink. Reported (cumulative, may be
  /// called more than once) before on_finish, so file writers persist the
  /// loss and consumers can mark their results lossy. Default: ignore.
  virtual void on_drops(std::uint64_t dropped) { (void)dropped; }
};

/// Broadcasts every record to a set of downstream sinks (live consumers +
/// an ESST file writer, typically). Does not own them.
class FanoutSink final : public Sink {
 public:
  FanoutSink() = default;
  explicit FanoutSink(std::vector<Sink*> sinks) : sinks_(std::move(sinks)) {}

  void add(Sink* s) {
    if (s != nullptr) sinks_.push_back(s);
  }

  void on_record(const trace::Record& r) override {
    for (Sink* s : sinks_) s->on_record(r);
  }
  void on_finish(SimTime duration) override {
    for (Sink* s : sinks_) s->on_finish(duration);
  }
  void on_drops(std::uint64_t dropped) override {
    for (Sink* s : sinks_) s->on_drops(dropped);
  }

 private:
  std::vector<Sink*> sinks_;
};

}  // namespace ess::telemetry
