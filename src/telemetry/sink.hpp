// Streaming telemetry: the record-consumer interface.
//
// The instrumented driver (and the kernel's trace-drain daemon) publish each
// trace::Record to a Sink as it is emitted. Consumers are incremental: they
// never hold the whole trace, so trace length is bounded by disk (ESST
// files) or by the consumer's own state (histograms, top-K sketches), not by
// RAM — the difference between a one-off measurement harness and a tool that
// can watch a production-length run in flight.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/record.hpp"

namespace ess::telemetry {

class Sink {
 public:
  virtual ~Sink() = default;

  /// One record, in emission order.
  virtual void on_record(const trace::Record& r) = 0;

  /// A contiguous span of records, in emission order — the batch form the
  /// trace-drain daemon uses so a 4096-record drain pass costs one virtual
  /// call per sink instead of one per record. Semantically identical to
  /// calling on_record for each element; sinks with a cheaper bulk path
  /// (file writers) override it.
  virtual void on_records(const trace::Record* r, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) on_record(r[i]);
  }

  /// End of stream. `duration` is the wall-clock span of the capture (which
  /// can extend past the last record). Consumers finalize rate metrics here;
  /// file writers flush and write their index.
  virtual void on_finish(SimTime duration) { (void)duration; }

  /// Capture-loss accounting: `dropped` records overflowed out of the
  /// kernel ring and never reached this sink. Reported (cumulative, may be
  /// called more than once) before on_finish, so file writers persist the
  /// loss and consumers can mark their results lossy. Default: ignore.
  virtual void on_drops(std::uint64_t dropped) { (void)dropped; }
};

/// Broadcasts every record to a set of downstream sinks (live consumers +
/// an ESST file writer, typically). Does not own them.
class FanoutSink final : public Sink {
 public:
  FanoutSink() = default;
  explicit FanoutSink(std::vector<Sink*> sinks) : sinks_(std::move(sinks)) {}

  void add(Sink* s) {
    if (s != nullptr) sinks_.push_back(s);
  }

  void on_record(const trace::Record& r) override {
    for (Sink* s : sinks_) s->on_record(r);
  }
  void on_records(const trace::Record* r, std::size_t n) override {
    // Per-sink spans, not per-record fanout: each downstream sink gets one
    // call for the whole batch and applies its own bulk path.
    for (Sink* s : sinks_) s->on_records(r, n);
  }
  void on_finish(SimTime duration) override {
    for (Sink* s : sinks_) s->on_finish(duration);
  }
  void on_drops(std::uint64_t dropped) override {
    for (Sink* s : sinks_) s->on_drops(dropped);
  }

 private:
  std::vector<Sink*> sinks_;
};

}  // namespace ess::telemetry
