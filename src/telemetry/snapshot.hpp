// Periodic snapshots of a live capture.
//
// The paper's runs are 2000 s (baseline) and ~700 s (combined); until now
// the harness was silent for the whole span and the first number appeared
// after collect_trace(). The SnapshotEmitter watches record timestamps and
// fires a callback every `period` of *simulated* time with the current
// incremental characterization, so CharacterizationStudy (and any bench run
// with ESS_PROGRESS=1) can print live progress while a run is in flight.
#pragma once

#include <functional>
#include <string>

#include "telemetry/consumers.hpp"

namespace ess::telemetry {

struct Snapshot {
  SimTime t = 0;  // sim-time at which the snapshot fired
  std::uint64_t records = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double write_pct = 0;
  double recent_rate = 0;  // req/s over the sliding window
  std::uint32_t max_request_bytes = 0;
  std::uint64_t top_sector = 0;  // hottest sector so far (0 if none)
  std::uint64_t top_count = 0;
  bool final_snapshot = false;
};

/// Observes a StreamSummary and fires on period boundaries. Register it in
/// the same FanoutSink *after* the summary so each snapshot sees the record
/// that triggered it.
class SnapshotEmitter final : public Sink {
 public:
  using Callback = std::function<void(const Snapshot&)>;

  SnapshotEmitter(const StreamSummary& source, SimTime period, Callback cb);

  void on_record(const trace::Record& r) override;
  void on_finish(SimTime duration) override;

  std::uint64_t emitted() const { return emitted_; }

 private:
  Snapshot make(SimTime t, bool final_snapshot) const;

  const StreamSummary& source_;
  SimTime period_;
  SimTime next_;
  Callback cb_;
  std::uint64_t emitted_ = 0;
};

/// "t=  420s  n=  1042  w=98.3%  16.4 req/s  max= 16 KB  hot=45000" — the
/// one-liner the live-progress mode prints per snapshot.
std::string render_progress_line(const Snapshot& s);

}  // namespace ess::telemetry
