// Trace-driven replay: feed a captured trace back through a configurable
// disk model. This is the paper's proposed use of the measured data — "a
// parameter set that can be used for system design and tuning of parallel
// systems" — turned into a tool: evaluate a different drive, scheduler, or
// queue-merging policy against the real arrival process without rerunning
// the applications.
#pragma once

#include <cstdint>

#include "disk/drive.hpp"
#include "trace/trace_set.hpp"
#include "util/stats.hpp"

namespace ess::replay {

struct ReplayConfig {
  disk::ServiceParams disk;
  disk::SchedulerKind scheduler = disk::SchedulerKind::kElevator;
  std::uint32_t max_merge_sectors = 0;  // 0 = no queue merging
};

struct ReplayResult {
  std::uint64_t requests = 0;
  std::uint64_t merged = 0;
  SimTime makespan = 0;          // arrival of first -> completion of last
  SimTime disk_busy = 0;
  double utilization = 0;        // busy / makespan
  OnlineStats response_ms;       // submit -> completion, per request
  OnlineStats queue_delay_ms;    // submit -> service start, per request

  double mean_response_ms() const { return response_ms.mean(); }
  double p95_response_ms() const;  // approximated from mean/max (see impl)
};

/// Replay every record of `ts` at its original timestamp against a fresh
/// drive configured by `cfg`.
ReplayResult replay(const trace::TraceSet& ts, const ReplayConfig& cfg);

}  // namespace ess::replay
