#include "replay/replayer.hpp"

#include <algorithm>
#include <memory>

#include "sim/engine.hpp"

namespace ess::replay {

double ReplayResult::p95_response_ms() const {
  // The replayer keeps streaming stats only; approximate the tail as
  // mean + 2 sigma (callers needing exact quantiles can collect latencies
  // via their own completion hooks).
  return response_ms.mean() + 2.0 * response_ms.stddev();
}

ReplayResult replay(const trace::TraceSet& ts, const ReplayConfig& cfg) {
  ReplayResult result;
  if (ts.empty()) return result;

  sim::Engine engine;
  disk::Drive drive(engine,
                    disk::ServiceModel(disk::beowulf_geometry(), cfg.disk),
                    cfg.scheduler, cfg.max_merge_sectors);

  SimTime last_completion = 0;
  const SimTime first_arrival = ts.records().front().timestamp;

  for (const auto& r : ts.records()) {
    engine.schedule_at(r.timestamp, [&, r] {
      disk::Request req;
      req.sector = r.sector;
      req.sector_count = std::max<std::uint32_t>(1, r.size_bytes / 512);
      req.dir = r.is_write ? disk::Dir::kWrite : disk::Dir::kRead;
      const SimTime submitted = engine.now();
      drive.submit(req, [&, submitted](const disk::Request&) {
        const SimTime now = engine.now();
        result.response_ms.add(static_cast<double>(now - submitted) / 1e3);
        last_completion = std::max(last_completion, now);
      });
    });
  }
  engine.run();

  result.requests = ts.size();
  result.merged = drive.stats().merged;
  result.makespan = last_completion - first_arrival;
  result.disk_busy = drive.stats().busy_time;
  result.utilization =
      result.makespan > 0
          ? static_cast<double>(result.disk_busy) /
                static_cast<double>(result.makespan)
          : 0.0;
  const auto& st = drive.stats();
  if (st.requests > 0) {
    result.queue_delay_ms.add(
        static_cast<double>(st.total_queue_delay) /
        static_cast<double>(st.requests) / 1e3);
  }
  return result;
}

}  // namespace ess::replay
