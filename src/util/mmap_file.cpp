#include "util/mmap_file.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define ESS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ESS_HAVE_MMAP 0
#endif

namespace ess::util {

namespace {

/// Fallback: slurp the whole file into a heap buffer. Used when mmap is
/// unavailable or refuses the file; keeps the span contract identical.
std::uint8_t* read_whole_file(const std::string& path, std::size_t size) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("mmap_file: cannot open " + path);
  }
  auto* buf = new std::uint8_t[size > 0 ? size : 1];
  std::size_t got = 0;
  while (got < size) {
    const std::size_t n = std::fread(buf + got, 1, size - got, f);
    if (n == 0) break;
    got += n;
  }
  std::fclose(f);
  if (got != size) {
    delete[] buf;
    throw std::runtime_error("mmap_file: short read on " + path);
  }
  return buf;
}

std::size_t file_size_of(const std::string& path) {
#if ESS_HAVE_MMAP
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 || st.st_size < 0) {
    throw std::runtime_error("mmap_file: cannot stat " + path);
  }
  return static_cast<std::size_t>(st.st_size);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("mmap_file: cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long pos = std::ftell(f);
  std::fclose(f);
  if (pos < 0) throw std::runtime_error("mmap_file: cannot size " + path);
  return static_cast<std::size_t>(pos);
#endif
}

}  // namespace

MmapFile::MmapFile(const std::string& path) {
  size_ = file_size_of(path);
  if (size_ == 0) return;  // empty span, nothing to map
#if ESS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping pins the pages, not the descriptor.
    ::close(fd);
    if (p != MAP_FAILED) {
      data_ = static_cast<std::uint8_t*>(p);
      mapped_ = true;
      return;
    }
  }
#endif
  data_ = read_whole_file(path, size_);
  mapped_ = false;
}

MmapFile::~MmapFile() { reset(); }

void MmapFile::reset() noexcept {
  if (data_ != nullptr) {
#if ESS_HAVE_MMAP
    if (mapped_) {
      ::munmap(data_, size_);
    } else {
      delete[] data_;
    }
#else
    delete[] data_;
#endif
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapped_ = std::exchange(other.mapped_, false);
  }
  return *this;
}

void MmapFile::advise_sequential() const {
#if ESS_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::madvise(data_, size_, MADV_SEQUENTIAL);
  }
#endif
}

void MmapFile::advise_willneed(std::size_t offset, std::size_t len) const {
#if ESS_HAVE_MMAP
  if (!mapped_ || data_ == nullptr || offset >= size_) return;
  if (len > size_ - offset) len = size_ - offset;
  // madvise wants a page-aligned start; round down and stretch the length.
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t misalign = offset % page;
  ::madvise(data_ + (offset - misalign), len + misalign, MADV_WILLNEED);
#endif
}

}  // namespace ess::util
