// Minimal CSV writer for benchmark/figure output files.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace ess {

/// Writes rows of comma-separated values. Strings containing commas or
/// quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// In-memory mode (retrieve with str()); used by tests.
  CsvWriter();

  void header(const std::vector<std::string>& names);

  template <typename... Ts>
  void row(const Ts&... fields) {
    std::ostringstream line;
    bool first = true;
    (append_field(line, first, fields), ...);
    write_line(line.str());
  }

  std::string str() const { return buffer_.str(); }

 private:
  template <typename T>
  void append_field(std::ostringstream& line, bool& first, const T& value) {
    if (!first) line << ',';
    first = false;
    if constexpr (std::is_convertible_v<T, std::string>) {
      line << escape(std::string(value));
    } else {
      line << value;
    }
  }

  static std::string escape(const std::string& s);
  void write_line(const std::string& line);

  std::ofstream file_;
  std::ostringstream buffer_;
  bool to_file_ = false;
};

}  // namespace ess
