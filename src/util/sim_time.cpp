#include "util/sim_time.hpp"

#include <cstdio>

namespace ess {

std::string format_time(SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%06llus",
                static_cast<unsigned long long>(t / kUsPerSec),
                static_cast<unsigned long long>(t % kUsPerSec));
  return buf;
}

}  // namespace ess
