// Deterministic pseudo-random number generation for the simulator.
//
// xoshiro256** seeded via SplitMix64. We avoid <random> engines for state
// compactness and cross-platform reproducibility of the streams (libstdc++
// distributions are not guaranteed bit-identical across versions, so the
// distributions here are hand-rolled too).
#pragma once

#include <array>
#include <cstdint>

namespace ess {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Unbiased (rejection).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller (deterministic pairing).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial.
  bool chance(double p);

  /// Split off an independent stream (for per-node / per-process RNGs).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ess
