#include "util/stats.hpp"

#include <cmath>
#include <stdexcept>

namespace ess {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Histogram::add(std::int64_t key, std::uint64_t weight) {
  cells_[key] += weight;
  total_ += weight;
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [key, count] : other.cells_) cells_[key] += count;
  total_ += other.total_;
}

std::uint64_t Histogram::count(std::int64_t key) const {
  const auto it = cells_.find(key);
  return it == cells_.end() ? 0 : it->second;
}

double Histogram::fraction(std::int64_t key) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(count(key)) /
                           static_cast<double>(total_);
}

std::vector<std::int64_t> Histogram::keys() const {
  std::vector<std::int64_t> out;
  out.reserve(cells_.size());
  for (const auto& [k, v] : cells_) out.push_back(k);
  return out;
}

std::vector<std::pair<std::int64_t, std::uint64_t>> Histogram::top(
    std::size_t k) const {
  std::vector<std::pair<std::int64_t, std::uint64_t>> all(cells_.begin(),
                                                          cells_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile p");
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double coverage_fraction(const Histogram& h, double coverage) {
  if (h.total() == 0) return 0.0;
  std::vector<std::uint64_t> counts;
  counts.reserve(h.cells().size());
  for (const auto& [k, v] : h.cells()) counts.push_back(v);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  const auto target = static_cast<double>(h.total()) * coverage;
  double acc = 0.0;
  std::size_t used = 0;
  for (const auto c : counts) {
    acc += static_cast<double>(c);
    ++used;
    if (acc >= target) break;
  }
  return static_cast<double>(used) / static_cast<double>(counts.size());
}

}  // namespace ess
