// Small statistics helpers used by the trace-analysis layer.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace ess {

/// Streaming mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Sparse integer-keyed histogram (e.g., request size in bytes -> count).
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);

  /// Cell-wise sum with another histogram: equivalent to having added the
  /// other histogram's samples to this one.
  void merge(const Histogram& other);

  std::uint64_t count(std::int64_t key) const;
  std::uint64_t total() const { return total_; }
  double fraction(std::int64_t key) const;

  /// Keys in ascending order.
  std::vector<std::int64_t> keys() const;

  /// (key, count) pairs sorted by descending count; ties by ascending key.
  std::vector<std::pair<std::int64_t, std::uint64_t>> top(std::size_t k) const;

  const std::map<std::int64_t, std::uint64_t>& cells() const { return cells_; }

 private:
  std::map<std::int64_t, std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

/// Percentile of a data set; interpolates between order statistics.
/// p in [0, 100]. Returns 0 for an empty input.
double percentile(std::vector<double> values, double p);

/// Fraction of distinct keys (smallest such set) that covers `coverage`
/// (e.g. 0.9) of the total weight of the histogram. This is the "90/10
/// rule" metric used for spatial locality.
double coverage_fraction(const Histogram& h, double coverage);

}  // namespace ess
