#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace ess {
namespace {

std::string format_tick(double v) {
  char buf[32];
  if (std::abs(v) >= 100000.0) {
    std::snprintf(buf, sizeof buf, "%.2e", v);
  } else if (std::abs(v - std::round(v)) < 1e-9) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  }
  return buf;
}

}  // namespace

AsciiScatter::AsciiScatter(std::string title, std::string x_label,
                           std::string y_label, std::size_t width,
                           std::size_t height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      width_(width),
      height_(height) {}

void AsciiScatter::add(double x, double y, char glyph) {
  points_.push_back({x, y, glyph});
}

void AsciiScatter::set_x_range(double lo, double hi) {
  has_x_range_ = true;
  x_lo_ = lo;
  x_hi_ = hi;
}

void AsciiScatter::set_y_range(double lo, double hi) {
  has_y_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string AsciiScatter::render() const {
  double x_lo = x_lo_, x_hi = x_hi_, y_lo = y_lo_, y_hi = y_hi_;
  if (!has_x_range_ || !has_y_range_) {
    double px_lo = std::numeric_limits<double>::max();
    double px_hi = std::numeric_limits<double>::lowest();
    double py_lo = px_lo, py_hi = px_hi;
    for (const auto& p : points_) {
      px_lo = std::min(px_lo, p.x);
      px_hi = std::max(px_hi, p.x);
      py_lo = std::min(py_lo, p.y);
      py_hi = std::max(py_hi, p.y);
    }
    if (points_.empty()) px_lo = py_lo = 0, px_hi = py_hi = 1;
    if (!has_x_range_) x_lo = px_lo, x_hi = px_hi;
    if (!has_y_range_) y_lo = py_lo, y_hi = py_hi;
  }
  if (x_hi <= x_lo) x_hi = x_lo + 1;
  if (y_hi <= y_lo) y_hi = y_lo + 1;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (const auto& p : points_) {
    if (p.x < x_lo || p.x > x_hi || p.y < y_lo || p.y > y_hi) continue;
    const auto col = static_cast<std::size_t>(
        (p.x - x_lo) / (x_hi - x_lo) * static_cast<double>(width_ - 1));
    const auto row = static_cast<std::size_t>(
        (p.y - y_lo) / (y_hi - y_lo) * static_cast<double>(height_ - 1));
    grid[height_ - 1 - row][col] = p.glyph;
  }

  std::ostringstream out;
  out << title_ << "\n";
  out << "  y: " << y_label_ << "  [" << format_tick(y_lo) << " .. "
      << format_tick(y_hi) << "]\n";
  for (const auto& line : grid) out << "  |" << line << "\n";
  out << "  +" << std::string(width_, '-') << "\n";
  out << "  x: " << x_label_ << "  [" << format_tick(x_lo) << " .. "
      << format_tick(x_hi) << "]   (" << points_.size() << " points)\n";
  return out.str();
}

AsciiBarChart::AsciiBarChart(std::string title, std::size_t bar_width)
    : title_(std::move(title)), bar_width_(bar_width) {}

void AsciiBarChart::add(const std::string& label, double value) {
  bars_.push_back({label, value});
}

std::string AsciiBarChart::render() const {
  double max_v = 0.0;
  std::size_t label_w = 0;
  for (const auto& b : bars_) {
    max_v = std::max(max_v, b.value);
    label_w = std::max(label_w, b.label.size());
  }
  if (max_v <= 0.0) max_v = 1.0;

  std::ostringstream out;
  out << title_ << "\n";
  for (const auto& b : bars_) {
    const auto n = static_cast<std::size_t>(
        std::round(b.value / max_v * static_cast<double>(bar_width_)));
    out << "  " << b.label << std::string(label_w - b.label.size(), ' ')
        << " |" << std::string(n, '#') << " " << format_tick(b.value) << "\n";
  }
  return out.str();
}

}  // namespace ess
