// Simulated time: integer microseconds since experiment start.
//
// The whole simulator is driven by virtual time; there is deliberately no
// dependence on the wall clock anywhere, so identical inputs produce
// identical traces.
#pragma once

#include <cstdint>
#include <string>

namespace ess {

/// Simulated time in microseconds since the start of the experiment.
using SimTime = std::uint64_t;

/// Signed duration in microseconds, for differences between SimTime values.
using SimDuration = std::int64_t;

inline constexpr SimTime kUsPerMs = 1'000;
inline constexpr SimTime kUsPerSec = 1'000'000;

/// 3.5 us  -> usec(3) + ... ; small constructors for readable constants.
constexpr SimTime usec(std::uint64_t n) { return n; }
constexpr SimTime msec(std::uint64_t n) { return n * kUsPerMs; }
constexpr SimTime sec(std::uint64_t n) { return n * kUsPerSec; }

/// Seconds as a double, for reporting.
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kUsPerSec);
}

/// Render a SimTime as "123.456789s" for logs and reports.
std::string format_time(SimTime t);

}  // namespace ess
