#include "util/rng.hpp"

#include <cmath>

namespace ess {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::chance(double p) { return uniform01() < p; }

Rng Rng::split() {
  Rng child(next_u64() ^ 0xdeadbeefcafef00dULL);
  return child;
}

}  // namespace ess
