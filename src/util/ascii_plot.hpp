// Terminal rendering of the paper's figures.
//
// The original figures are scatter plots (sector or request size vs. time)
// and bar charts (locality histograms). We render them as character grids so
// every bench binary can print the figure it regenerates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ess {

/// A scatter plot on a fixed character grid. Later points overwrite earlier
/// ones in the same cell, matching how dense scatter plots read.
class AsciiScatter {
 public:
  AsciiScatter(std::string title, std::string x_label, std::string y_label,
               std::size_t width = 78, std::size_t height = 22);

  void add(double x, double y, char glyph = '*');

  /// Force axis ranges (otherwise auto-scaled to the data).
  void set_x_range(double lo, double hi);
  void set_y_range(double lo, double hi);

  std::string render() const;

 private:
  struct Point {
    double x, y;
    char glyph;
  };

  std::string title_, x_label_, y_label_;
  std::size_t width_, height_;
  std::vector<Point> points_;
  bool has_x_range_ = false, has_y_range_ = false;
  double x_lo_ = 0, x_hi_ = 1, y_lo_ = 0, y_hi_ = 1;
};

/// A horizontal bar chart: one labelled bar per category.
class AsciiBarChart {
 public:
  explicit AsciiBarChart(std::string title, std::size_t bar_width = 50);

  void add(const std::string& label, double value);

  std::string render() const;

 private:
  struct Bar {
    std::string label;
    double value;
  };

  std::string title_;
  std::size_t bar_width_;
  std::vector<Bar> bars_;
};

}  // namespace ess
