// Read-only memory-mapped file: the zero-copy substrate under the ESST
// view/decode path (telemetry::EsstView).
//
// The whole file appears as one contiguous byte span backed by the page
// cache: no read() syscalls, no userspace copy into stream buffers, and —
// the property the parallel scan engine is built on — any number of
// threads can read the span concurrently without a shared file position
// or any locking. An std::ifstream per shard was the old design's fixed
// cost (open + header/index re-parse per shard); one MmapFile shared by
// every shard is the new design's whole point.
//
// On platforms without mmap (or when mmap itself fails — exotic
// filesystems, /proc files), the constructor falls back to reading the
// file into an owned heap buffer. Same span semantics, one copy, never a
// functional difference — callers cannot tell except through mapped().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ess::util {

class MmapFile {
 public:
  /// Empty (nothing mapped): data() == nullptr, size() == 0.
  MmapFile() = default;
  /// Map `path` read-only. Throws std::runtime_error when the file cannot
  /// be opened or its size cannot be determined; an empty file maps to an
  /// empty span, not an error.
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True when backed by a real mapping (false: heap-buffer fallback).
  bool mapped() const { return mapped_; }

  /// madvise(MADV_SEQUENTIAL): tell the kernel a front-to-back pass is
  /// coming so readahead runs ahead of the decode. No-op on the fallback.
  void advise_sequential() const;
  /// madvise(MADV_WILLNEED) on [offset, offset+len): prefault the pages a
  /// worker is about to decode. No-op on the fallback.
  void advise_willneed(std::size_t offset, std::size_t len) const;

 private:
  void reset() noexcept;

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

}  // namespace ess::util
