// SmallFunction: a move-only, small-buffer-optimized callable wrapper.
//
// The event engine stores one callback per scheduled event, and nearly all
// of them are lambdas capturing a `this` pointer plus a few scalars — well
// under 64 bytes. std::function heap-allocates many of those (libstdc++'s
// inline buffer is 16 bytes), which made the allocator the hottest line of
// the simulation loop. SmallFunction keeps callables up to `BufBytes`
// inline in the owning object (an event-slab node, so the storage is
// recycled with the slot) and falls back to the heap only for oversized
// captures.
//
// Differences from std::function, deliberate:
//   - move-only (no copy): event callbacks are fired exactly once, and
//     requiring copyability forces captured state to be copyable too.
//   - invocation is non-const and one-shot-friendly: the callable may move
//     its own captures out (the periodic re-arm path does).
//   - no target_type()/target() introspection.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ess {

template <typename Signature, std::size_t BufBytes = 64>
class SmallFunction;

template <typename R, typename... Args, std::size_t BufBytes>
class SmallFunction<R(Args...), BufBytes> {
 public:
  SmallFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction& operator=(F&& f) {
    reset();
    emplace(std::forward<F>(f));
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(&buf_, std::forward<Args>(args)...);
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(&buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*move)(void* dst, void* src);  // move-construct dst from src
    void (*destroy)(void*);
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= BufBytes && alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  struct InlineOps {
    static F* get(void* p) { return std::launder(static_cast<F*>(p)); }
    static R invoke(void* p, Args&&... args) {
      return (*get(p))(std::forward<Args>(args)...);
    }
    static void move(void* dst, void* src) {
      ::new (dst) F(std::move(*get(src)));
      get(src)->~F();
    }
    static void destroy(void* p) { get(p)->~F(); }
    static constexpr Ops ops{&invoke, &move, &destroy};
  };

  template <typename F>
  struct HeapOps {
    static F*& slot(void* p) { return *std::launder(static_cast<F**>(p)); }
    static R invoke(void* p, Args&&... args) {
      return (*slot(p))(std::forward<Args>(args)...);
    }
    static void move(void* dst, void* src) {
      ::new (dst) F*(slot(src));
      slot(src) = nullptr;
    }
    static void destroy(void* p) { delete slot(p); }
    static constexpr Ops ops{&invoke, &move, &destroy};
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(&buf_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(&buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  void move_from(SmallFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(&buf_, &other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[BufBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ess
