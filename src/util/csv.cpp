#include "util/csv.hpp"

#include <stdexcept>

namespace ess {

CsvWriter::CsvWriter(const std::string& path) : file_(path), to_file_(true) {
  if (!file_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::CsvWriter() = default;

void CsvWriter::header(const std::vector<std::string>& names) {
  std::ostringstream line;
  bool first = true;
  for (const auto& n : names) {
    if (!first) line << ',';
    first = false;
    line << escape(n);
  }
  write_line(line.str());
}

std::string CsvWriter::escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_line(const std::string& line) {
  if (to_file_) {
    file_ << line << '\n';
  } else {
    buffer_ << line << '\n';
  }
}

}  // namespace ess
